//! The wire protocol: line-delimited JSON requests and responses.
//!
//! # Framing
//!
//! One request per line, one JSON object per request, newline
//! terminated, at most [`MAX_LINE_BYTES`] bytes. Responses are likewise
//! single lines. A line that exceeds the cap is consumed (through its
//! newline) and answered with a [`code::LINE_TOO_LONG`] error; a line
//! that is not a JSON object is answered with [`code::PARSE_ERROR`].
//! Malformed input **never** panics the daemon and never drops the
//! connection — the connection is only closed by the client (EOF) or by
//! a successful `shutdown`.
//!
//! # Requests
//!
//! ```json
//! {"id":"c1","verb":"submit","job":{"kind":"characterize","entries":["Sort"],"window":"quick","seed":2013}}
//! {"id":"c2","verb":"status","job":"job-1"}
//! {"id":"c3","verb":"stream","job":"job-1"}
//! {"id":"c4","verb":"cancel","job":"job-1"}
//! {"id":"c5","verb":"stats"}
//! {"id":"c6","verb":"subset","k":4,"linkage":"complete","window":"quick","seed":2013}
//! {"id":"c7","verb":"shutdown"}
//! ```
//!
//! `id` is a client-chosen string or non-negative integer, echoed on
//! every response; reusing an id on one connection is a
//! [`code::DUPLICATE_ID`] error. `entries` is either an array of figure
//! labels or a group name (`"all"`, `"data_analysis"`, `"services"`,
//! `"hpcc"`). An optional `"sampled":true` runs the job under
//! SMARTS-style systematic sampling (default validated plan) instead of
//! exact simulation.
//!
//! A `subset` request runs Exhibit SS synchronously: characterize the
//! eleven data-analysis workloads (through the shared in-process
//! cache), PCA the metric matrix, hierarchically cluster the
//! PC scores, and answer with the `k` medoid representatives. All four
//! fields are optional: `k` defaults to 4 (must be in `[1, 11]`),
//! `linkage` to `"complete"` (or `"single"`/`"average"`), `window` to
//! `"quick"`, `seed` to 2013.
//!
//! # Responses
//!
//! Success: `{"id":…,"ok":true,"result":{…}}`. Failure:
//! `{"id":…,"ok":false,"error":{"code":"…","message":"…"}}` (the id is
//! `null` when the faulty line did not yield one). A `stream` request
//! additionally emits zero or more `{"id":…,"event":{…}}` frames — one
//! per `dc-obs` event in the job's log — before its final response. A
//! `stats` request's `result` is the daemon's metrics snapshot in the
//! canonical `dc_obs::metrics` JSON encoding (sorted metrics, integer
//! values, quantile upper bounds from bucket edges).
//!
//! # Determinism
//!
//! For a given job spec the `output` object inside a finished job's
//! status is **byte-deterministic**: same bytes across processes,
//! worker counts, and client interleavings. Envelope fields that name
//! the submission order (`job`) or this process's history
//! (`simulations`) sit outside `output` precisely so the contract is
//! exact.

use dc_store::json::{parse_json, write_json_string, Json};
use dcbench::BenchmarkId;

/// Hard cap on one request line (bytes, newline excluded). Oversized
/// lines are consumed and rejected, never buffered unboundedly.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Widest co-run the server schedules on one chip.
pub const MAX_CORUN: u32 = 8;

/// Structured error codes (the `error.code` field).
pub mod code {
    /// The line is not a well-formed JSON object.
    pub const PARSE_ERROR: &str = "parse_error";
    /// The line exceeded [`super::MAX_LINE_BYTES`].
    pub const LINE_TOO_LONG: &str = "line_too_long";
    /// The object parsed but a field is missing or invalid.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The `verb` is not one of the seven documented verbs.
    pub const UNKNOWN_VERB: &str = "unknown_verb";
    /// The named job does not exist on this daemon.
    pub const UNKNOWN_JOB: &str = "unknown_job";
    /// The request id was already used on this connection.
    pub const DUPLICATE_ID: &str = "duplicate_id";
    /// The bounded job queue is full; retry after jobs drain.
    pub const QUEUE_FULL: &str = "queue_full";
    /// The daemon is shutting down and accepts no new jobs.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// A client-chosen request id: string or non-negative integer, echoed
/// verbatim on every response for that request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestId {
    /// A string id.
    Str(String),
    /// An integer id (kept exact up to 2^53, the JSON number range).
    Num(u64),
}

impl RequestId {
    /// Append the id's JSON rendering to `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            RequestId::Str(s) => write_json_string(out, s),
            RequestId::Num(n) => {
                use std::fmt::Write;
                let _ = write!(out, "{n}");
            }
        }
    }
}

/// A structured protocol error: code + human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable detail (single line).
    pub message: String,
}

impl ProtoError {
    /// Build an error.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

/// The measurement window a job runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Short windows (tests, smoke runs): 500k measured µops.
    Quick,
    /// Full windows (the figures): 1.2M measured after 2M warm-up.
    Full,
}

impl Window {
    /// The wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Window::Quick => "quick",
            Window::Full => "full",
        }
    }

    /// The simulation window this maps to.
    pub fn sim_options(&self) -> dc_cpu::core::SimOptions {
        match self {
            Window::Quick => dc_cpu::core::SimOptions::exact(500_000, 300_000),
            Window::Full => dc_cpu::core::SimOptions::exact(1_200_000, 2_000_000),
        }
    }
}

/// A validated characterization job specification. Every field is part
/// of the determinism contract: two specs that compare equal produce
/// byte-identical `output` objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The entries to characterize, in request order.
    pub entries: Vec<BenchmarkId>,
    /// Measurement window.
    pub window: Window,
    /// Master trace seed (per-entry seeds derive from it).
    pub seed: u64,
    /// Co-run width: 1 is the classic solo measurement; wider runs
    /// return the observed core-0 row under shared-L3 contention.
    pub corun: u32,
    /// Run the window under SMARTS-style systematic sampling (the
    /// default validated plan) instead of exact simulation: ~1.7×
    /// faster wall-clock (functional warming still touches every
    /// cache/TLB/predictor), counters extrapolated, cached under a
    /// distinct key. Defaults to `false` — exact — when the field is
    /// absent.
    pub sampled: bool,
}

/// Largest integer the hardened JSON parser carries exactly (its
/// numbers are f64).
const MAX_EXACT_INT: u64 = 1 << 53;

fn exact_u64(v: &Json) -> Option<u64> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT_INT as f64 => {
            Some(*n as u64)
        }
        _ => None,
    }
}

impl JobSpec {
    /// Parse and validate the `job` object of a `submit` request.
    pub fn parse(doc: &Json) -> Result<JobSpec, ProtoError> {
        let bad = |m: String| ProtoError::new(code::BAD_REQUEST, m);
        if !matches!(doc, Json::Obj(_)) {
            return Err(bad("\"job\" must be an object".into()));
        }
        match doc.get("kind") {
            None | Some(Json::Str(_)) => {}
            Some(_) => return Err(bad("\"kind\" must be a string".into())),
        }
        if let Some(Json::Str(kind)) = doc.get("kind") {
            if kind != "characterize" {
                return Err(bad(format!("unknown job kind {kind:?}")));
            }
        }
        let entries = match doc.get("entries") {
            Some(Json::Str(group)) => match group.as_str() {
                "all" => BenchmarkId::all().to_vec(),
                "data_analysis" => BenchmarkId::data_analysis().to_vec(),
                "services" => BenchmarkId::services().to_vec(),
                "hpcc" => BenchmarkId::hpcc().to_vec(),
                other => return Err(bad(format!("unknown entry group {other:?}"))),
            },
            Some(Json::Arr(items)) => {
                let mut entries = Vec::with_capacity(items.len());
                for item in items {
                    let Json::Str(name) = item else {
                        return Err(bad("\"entries\" must contain figure labels".into()));
                    };
                    let Some(id) = BenchmarkId::from_name(name) else {
                        return Err(bad(format!("unknown entry {name:?}")));
                    };
                    if entries.contains(&id) {
                        return Err(bad(format!("duplicate entry {name:?}")));
                    }
                    entries.push(id);
                }
                entries
            }
            _ => {
                return Err(bad(
                    "missing \"entries\" (array of labels or group name)".into()
                ))
            }
        };
        if entries.is_empty() {
            return Err(bad("\"entries\" must not be empty".into()));
        }
        let window = match doc.get("window") {
            None => Window::Quick,
            Some(Json::Str(w)) if w == "quick" => Window::Quick,
            Some(Json::Str(w)) if w == "full" => Window::Full,
            _ => return Err(bad("\"window\" must be \"quick\" or \"full\"".into())),
        };
        let seed = match doc.get("seed") {
            None => 2013,
            Some(v) => exact_u64(v)
                .ok_or_else(|| bad("\"seed\" must be an integer in [0, 2^53]".into()))?,
        };
        let corun = match doc.get("corun") {
            None => 1,
            Some(v) => match exact_u64(v) {
                Some(n) if (1..=u64::from(MAX_CORUN)).contains(&n) => n as u32,
                _ => {
                    return Err(bad(format!(
                        "\"corun\" must be an integer in [1, {MAX_CORUN}]"
                    )))
                }
            },
        };
        let sampled = match doc.get("sampled") {
            None => false,
            Some(Json::Bool(b)) => *b,
            _ => return Err(bad("\"sampled\" must be a boolean".into())),
        };
        Ok(JobSpec {
            entries,
            window,
            seed,
            corun,
            sampled,
        })
    }

    /// The simulation window this job runs at: the named [`Window`],
    /// with the default SMARTS plan folded in when the job asked to be
    /// sampled.
    pub fn sim_options(&self) -> dc_cpu::core::SimOptions {
        let opts = self.window.sim_options();
        if self.sampled {
            let plan = dc_cpu::SamplePlan::DEFAULT;
            opts.with_sampling(plan.detail_ops, plan.ffwd_ops)
        } else {
            opts
        }
    }
}

/// A validated `subset` request: which Exhibit SS to compute. Every
/// field is part of the determinism contract — two specs that compare
/// equal produce byte-identical `output` objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsetSpec {
    /// Cluster count (and therefore subset size), in `[1, 11]`.
    pub k: u32,
    /// Linkage the merge tree is built with.
    pub linkage: dcbench::stats::Linkage,
    /// Measurement window for the eleven underlying characterizations.
    pub window: Window,
    /// Master trace seed.
    pub seed: u64,
}

impl SubsetSpec {
    /// Parse and validate a `subset` request's top-level fields (all
    /// optional, all defaulted).
    pub fn parse(doc: &Json) -> Result<SubsetSpec, ProtoError> {
        let bad = |m: String| ProtoError::new(code::BAD_REQUEST, m);
        let max_k = BenchmarkId::data_analysis().len() as u64;
        let k = match doc.get("k") {
            None => 4,
            Some(v) => match exact_u64(v) {
                Some(n) if (1..=max_k).contains(&n) => n as u32,
                _ => return Err(bad(format!("\"k\" must be an integer in [1, {max_k}]"))),
            },
        };
        let linkage = match doc.get("linkage") {
            None => dcbench::stats::Linkage::Complete,
            Some(Json::Str(name)) => match dcbench::stats::Linkage::from_name(name) {
                Some(linkage) => linkage,
                None => return Err(bad(format!("unknown linkage {name:?}"))),
            },
            _ => {
                return Err(bad(
                    "\"linkage\" must be \"single\", \"complete\" or \"average\"".into(),
                ))
            }
        };
        let window = match doc.get("window") {
            None => Window::Quick,
            Some(Json::Str(w)) if w == "quick" => Window::Quick,
            Some(Json::Str(w)) if w == "full" => Window::Full,
            _ => return Err(bad("\"window\" must be \"quick\" or \"full\"".into())),
        };
        let seed = match doc.get("seed") {
            None => 2013,
            Some(v) => exact_u64(v)
                .ok_or_else(|| bad("\"seed\" must be an integer in [0, 2^53]".into()))?,
        };
        Ok(SubsetSpec {
            k,
            linkage,
            window,
            seed,
        })
    }
}

/// What a request asks the daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Queue a new job.
    Submit(JobSpec),
    /// Report a job's state (and output, once done).
    Status(String),
    /// Cancel a queued job.
    Cancel(String),
    /// Replay-and-follow a job's event log.
    Stream(String),
    /// Snapshot the daemon's metrics registry (counters, gauges,
    /// latency histograms) as a deterministic JSON object.
    Stats,
    /// Compute Exhibit SS synchronously: which `k` workloads represent
    /// the data-analysis space.
    Subset(SubsetSpec),
    /// Stop the daemon: finish running jobs, cancel queued ones, exit.
    Shutdown,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed on every response.
    pub id: RequestId,
    /// The verb and its payload.
    pub action: Action,
}

impl Request {
    /// The wire verb of this request's action.
    pub fn verb(&self) -> &'static str {
        match self.action {
            Action::Submit(_) => "submit",
            Action::Status(_) => "status",
            Action::Cancel(_) => "cancel",
            Action::Stream(_) => "stream",
            Action::Stats => "stats",
            Action::Subset(_) => "subset",
            Action::Shutdown => "shutdown",
        }
    }
}

fn parse_id(doc: &Json) -> Result<RequestId, ProtoError> {
    match doc.get("id") {
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= 200 => Ok(RequestId::Str(s.clone())),
        Some(v) => exact_u64(v).map(RequestId::Num).ok_or_else(|| {
            ProtoError::new(
                code::BAD_REQUEST,
                "\"id\" must be a non-empty string (at most 200 bytes) or an integer in [0, 2^53]",
            )
        }),
        None => Err(ProtoError::new(code::BAD_REQUEST, "missing \"id\"")),
    }
}

fn parse_job_name(doc: &Json, verb: &str) -> Result<String, ProtoError> {
    match doc.get("job") {
        Some(Json::Str(name)) => Ok(name.clone()),
        _ => Err(ProtoError::new(
            code::BAD_REQUEST,
            format!("\"{verb}\" needs a \"job\" name string"),
        )),
    }
}

/// Parse one request line. On failure, the error is paired with the
/// request id when one could still be recovered, so the error response
/// can be correlated by the client.
pub fn parse_request(line: &str) -> Result<Request, (Option<RequestId>, ProtoError)> {
    let doc = parse_json(line).map_err(|e| (None, ProtoError::new(code::PARSE_ERROR, e)))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err((
            None,
            ProtoError::new(code::PARSE_ERROR, "request must be a JSON object"),
        ));
    }
    let id = parse_id(&doc).map_err(|e| (None, e))?;
    let verb = match doc.get("verb") {
        Some(Json::Str(v)) => v.clone(),
        _ => {
            return Err((
                Some(id),
                ProtoError::new(code::BAD_REQUEST, "missing or non-string \"verb\""),
            ))
        }
    };
    let action = match verb.as_str() {
        "submit" => {
            let job = doc.get("job").ok_or_else(|| {
                (
                    Some(id.clone()),
                    ProtoError::new(code::BAD_REQUEST, "\"submit\" needs a \"job\" object"),
                )
            })?;
            Action::Submit(JobSpec::parse(job).map_err(|e| (Some(id.clone()), e))?)
        }
        "status" => {
            Action::Status(parse_job_name(&doc, "status").map_err(|e| (Some(id.clone()), e))?)
        }
        "cancel" => {
            Action::Cancel(parse_job_name(&doc, "cancel").map_err(|e| (Some(id.clone()), e))?)
        }
        "stream" => {
            Action::Stream(parse_job_name(&doc, "stream").map_err(|e| (Some(id.clone()), e))?)
        }
        "stats" => Action::Stats,
        "subset" => Action::Subset(SubsetSpec::parse(&doc).map_err(|e| (Some(id.clone()), e))?),
        "shutdown" => Action::Shutdown,
        other => {
            return Err((
                Some(id),
                ProtoError::new(code::UNKNOWN_VERB, format!("unknown verb {other:?}")),
            ))
        }
    };
    Ok(Request { id, action })
}

/// Render a success response. `result` is a pre-rendered JSON object.
pub fn ok_response(id: &RequestId, result: &str) -> String {
    let mut out = String::with_capacity(32 + result.len());
    out.push_str("{\"id\":");
    id.render(&mut out);
    out.push_str(",\"ok\":true,\"result\":");
    out.push_str(result);
    out.push('}');
    out
}

/// Render an error response (`id` is `null` when the faulty line did
/// not yield one).
pub fn error_response(id: Option<&RequestId>, err: &ProtoError) -> String {
    let mut out = String::with_capacity(64 + err.message.len());
    out.push_str("{\"id\":");
    match id {
        Some(id) => id.render(&mut out),
        None => out.push_str("null"),
    }
    out.push_str(",\"ok\":false,\"error\":{\"code\":");
    write_json_string(&mut out, err.code);
    out.push_str(",\"message\":");
    write_json_string(&mut out, &err.message);
    out.push_str("}}");
    out
}

/// Render one stream frame wrapping a `dc-obs` event.
pub fn event_frame(id: &RequestId, event: &dc_obs::Event) -> String {
    let body = event.to_jsonl();
    let mut out = String::with_capacity(16 + body.len());
    out.push_str("{\"id\":");
    id.render(&mut out);
    out.push_str(",\"event\":");
    out.push_str(&body);
    out.push('}');
    out
}

/// Append a JSON number for `v`: Rust's shortest-round-trip `Display`
/// for finite values (deterministic across platforms), `null` for
/// non-finite ones — mirroring the `dc-obs` serializer so every number
/// the daemon emits obeys one rule.
pub fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trip_with_defaults() {
        let req = parse_request(
            r#"{"id":"a1","verb":"submit","job":{"kind":"characterize","entries":["Sort","Grep"]}}"#,
        )
        .expect("parses");
        assert_eq!(req.id, RequestId::Str("a1".into()));
        assert_eq!(req.verb(), "submit");
        let Action::Submit(spec) = req.action else {
            panic!("expected submit");
        };
        assert_eq!(spec.entries, vec![BenchmarkId::Sort, BenchmarkId::Grep]);
        assert_eq!(spec.window, Window::Quick);
        assert_eq!(spec.seed, 2013);
        assert_eq!(spec.corun, 1);
        assert!(!spec.sampled, "exact is the default");
    }

    #[test]
    fn sampled_jobs_parse_and_map_to_the_default_plan() {
        let req = parse_request(
            r#"{"id":"s1","verb":"submit","job":{"entries":["Sort"],"sampled":true}}"#,
        )
        .expect("parses");
        let Action::Submit(spec) = req.action else {
            panic!("expected submit");
        };
        assert!(spec.sampled);
        let opts = spec.sim_options();
        assert!(opts.is_sampled());
        assert_eq!(opts.max_ops, Window::Quick.sim_options().max_ops);
        let exact = JobSpec {
            sampled: false,
            ..spec
        };
        assert!(!exact.sim_options().is_sampled());
    }

    #[test]
    fn entry_groups_expand() {
        for (group, len) in [
            ("all", 26),
            ("data_analysis", 11),
            ("services", 5),
            ("hpcc", 7),
        ] {
            let line = format!(r#"{{"id":1,"verb":"submit","job":{{"entries":"{group}"}}}}"#);
            let req = parse_request(&line).expect("parses");
            let Action::Submit(spec) = req.action else {
                panic!("expected submit");
            };
            assert_eq!(spec.entries.len(), len, "group {group}");
        }
    }

    #[test]
    fn invalid_submissions_are_structured_errors() {
        let cases = [
            (r#"{"id":1,"verb":"submit"}"#, code::BAD_REQUEST),
            (r#"{"id":1,"verb":"submit","job":{}}"#, code::BAD_REQUEST),
            (
                r#"{"id":1,"verb":"submit","job":{"entries":["NotAWorkload"]}}"#,
                code::BAD_REQUEST,
            ),
            (
                r#"{"id":1,"verb":"submit","job":{"entries":["Sort","Sort"]}}"#,
                code::BAD_REQUEST,
            ),
            (
                r#"{"id":1,"verb":"submit","job":{"entries":["Sort"],"corun":99}}"#,
                code::BAD_REQUEST,
            ),
            (
                r#"{"id":1,"verb":"submit","job":{"entries":["Sort"],"window":"slow"}}"#,
                code::BAD_REQUEST,
            ),
            (
                r#"{"id":1,"verb":"submit","job":{"entries":["Sort"],"sampled":1}}"#,
                code::BAD_REQUEST,
            ),
            (
                r#"{"id":1,"verb":"submit","job":{"entries":[],"seed":7}}"#,
                code::BAD_REQUEST,
            ),
            (r#"{"id":1,"verb":"measure"}"#, code::UNKNOWN_VERB),
            (r#"{"verb":"status","job":"job-1"}"#, code::BAD_REQUEST),
            (r#"not json"#, code::PARSE_ERROR),
            (r#"[1,2,3]"#, code::PARSE_ERROR),
        ];
        for (line, want) in cases {
            let (_, err) = parse_request(line).expect_err(line);
            assert_eq!(err.code, want, "line: {line}");
        }
    }

    #[test]
    fn stats_and_shutdown_take_no_payload() {
        let req = parse_request(r#"{"id":"m1","verb":"stats"}"#).expect("parses");
        assert_eq!(req.action, Action::Stats);
        assert_eq!(req.verb(), "stats");
        let req = parse_request(r#"{"id":"m2","verb":"shutdown"}"#).expect("parses");
        assert_eq!(req.action, Action::Shutdown);
    }

    #[test]
    fn subset_parses_with_defaults_and_overrides() {
        let req = parse_request(r#"{"id":"ss1","verb":"subset"}"#).expect("parses");
        assert_eq!(req.verb(), "subset");
        let Action::Subset(spec) = req.action else {
            panic!("expected subset");
        };
        assert_eq!(spec.k, 4);
        assert_eq!(spec.linkage, dcbench::stats::Linkage::Complete);
        assert_eq!(spec.window, Window::Quick);
        assert_eq!(spec.seed, 2013);

        let req = parse_request(
            r#"{"id":"ss2","verb":"subset","k":3,"linkage":"average","window":"full","seed":7}"#,
        )
        .expect("parses");
        let Action::Subset(spec) = req.action else {
            panic!("expected subset");
        };
        assert_eq!(spec.k, 3);
        assert_eq!(spec.linkage, dcbench::stats::Linkage::Average);
        assert_eq!(spec.window, Window::Full);
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn invalid_subsets_are_structured_errors() {
        for line in [
            r#"{"id":1,"verb":"subset","k":0}"#,
            r#"{"id":1,"verb":"subset","k":12}"#,
            r#"{"id":1,"verb":"subset","k":2.5}"#,
            r#"{"id":1,"verb":"subset","k":"four"}"#,
            r#"{"id":1,"verb":"subset","linkage":"ward"}"#,
            r#"{"id":1,"verb":"subset","linkage":7}"#,
            r#"{"id":1,"verb":"subset","window":"slow"}"#,
            r#"{"id":1,"verb":"subset","seed":-1}"#,
        ] {
            let (id, err) = parse_request(line).expect_err(line);
            assert_eq!(err.code, code::BAD_REQUEST, "line: {line}");
            assert_eq!(id, Some(RequestId::Num(1)), "line: {line}");
        }
    }

    #[test]
    fn error_ids_are_recovered_when_possible() {
        let (id, _) = parse_request(r#"{"id":"x9","verb":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(RequestId::Str("x9".into())));
        let (id, _) = parse_request(r#"{"id":42,"verb":"submit"}"#).unwrap_err();
        assert_eq!(id, Some(RequestId::Num(42)));
        let (id, _) = parse_request("garbage").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn responses_render_stably() {
        let id = RequestId::Str("c\"1".into());
        assert_eq!(
            ok_response(&id, r#"{"job":"job-1","state":"queued"}"#),
            r#"{"id":"c\"1","ok":true,"result":{"job":"job-1","state":"queued"}}"#
        );
        let err = ProtoError::new(code::QUEUE_FULL, "64 jobs queued");
        assert_eq!(
            error_response(None, &err),
            r#"{"id":null,"ok":false,"error":{"code":"queue_full","message":"64 jobs queued"}}"#
        );
        let mut num = String::new();
        RequestId::Num(7).render(&mut num);
        assert_eq!(num, "7");
    }

    #[test]
    fn f64_rendering_is_json_safe() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        push_f64(&mut out, f64::NAN);
        push_f64(&mut out, 2.0);
        assert_eq!(out, "1.5null2");
    }
}
