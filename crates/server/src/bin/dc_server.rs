//! The `dc-server` daemon.
//!
//! ```text
//! dc-server [--tcp ADDR | --stdio] [--workers N] [--queue N]
//!           [--events PATH] [--port-file PATH]
//! ```
//!
//! * `--tcp ADDR` — listen on ADDR (default `127.0.0.1:0`; pair the
//!   ephemeral port with `--port-file` so scripts can find it).
//! * `--stdio` — serve exactly one session on stdin/stdout (the
//!   subprocess transport).
//! * `--workers N` — executor threads (default 2). Each job further
//!   fans its entries across `dcbench::pool` workers (`DCBENCH_JOBS`).
//! * `--queue N` — bounded queue depth (default 64); submissions
//!   beyond it get `queue_full`.
//! * `--events PATH` — stream server-wide telemetry (JSON Lines) to
//!   PATH: `request_accepted`, `request_rejected`, `job_queued`,
//!   `job_done`.
//! * `--port-file PATH` — after binding, write `host:port` to PATH
//!   (written atomically via a temp file + rename so watchers never
//!   read a half-written address).
//!
//! `DCBENCH_STORE=<path>` attaches the persistent result store at boot,
//! so the daemon starts warm from previous runs — and its misses warm
//! the next one.

use dc_obs::Recorder;
use dc_server::{Server, ServerConfig};
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

struct Args {
    tcp: Option<String>,
    stdio: bool,
    workers: usize,
    queue: usize,
    events: Option<String>,
    port_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        stdio: false,
        workers: 2,
        queue: 64,
        events: None,
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--stdio" => args.stdio = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--events" => args.events = Some(value("--events")?),
            "--port-file" => args.port_file = Some(value("--port-file")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.stdio && args.tcp.is_some() {
        return Err("--stdio and --tcp are mutually exclusive".into());
    }
    Ok(args)
}

fn recorder_for(events: Option<&str>) -> Result<Recorder, String> {
    match events {
        None => Ok(Recorder::disabled()),
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("--events {path}: {e}"))?;
            Ok(Recorder::jsonl(std::io::BufWriter::new(file)))
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("dc-server: {msg}");
            return ExitCode::from(2);
        }
    };
    let recorder = match recorder_for(args.events.as_deref()) {
        Ok(rec) => rec,
        Err(msg) => {
            eprintln!("dc-server: {msg}");
            return ExitCode::from(2);
        }
    };

    // Warm-start: attach the shared store before any client connects,
    // so even the first submission can be answered without simulating.
    match dcbench::cache::attach_from_env(&recorder) {
        Ok(Some(report)) => eprintln!(
            "dc-server: store attached ({} loaded, {} caught up)",
            report.loaded, report.caught_up
        ),
        Ok(None) => {}
        Err(e) => {
            // A broken store degrades to a cold start, never a refusal
            // to serve.
            eprintln!("dc-server: DCBENCH_STORE attach failed: {e}");
        }
    }

    let server = Server::start(ServerConfig {
        workers: args.workers,
        queue_cap: args.queue,
        recorder,
        ..ServerConfig::default()
    });

    if args.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut reader = stdin.lock();
        let mut writer = std::io::BufWriter::new(stdout.lock());
        server.serve_connection(&mut reader, &mut writer);
        let _ = writer.flush();
        server.begin_shutdown();
        server.wait();
        return ExitCode::SUCCESS;
    }

    let addr = args.tcp.as_deref().unwrap_or("127.0.0.1:0");
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dc-server: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    if let Some(path) = &args.port_file {
        // Temp-file + rename: a watcher polling for the file never
        // observes a partial address.
        let tmp = format!("{path}.tmp");
        let write =
            std::fs::write(&tmp, format!("{local}\n")).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("dc-server: --port-file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("dc-server: listening on {local}");
    server.serve_listener(&listener);
    server.wait();
    eprintln!("dc-server: bye");
    ExitCode::SUCCESS
}
