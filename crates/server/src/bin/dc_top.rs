//! `dc-top`: a terminal dashboard over a live daemon's `stats` verb.
//!
//! ```text
//! dc-top --connect HOST:PORT [--once | --interval-ms N [--samples N]]
//! dc-top --connect HOST:PORT --text   # raw Prometheus-style exposition
//! ```
//!
//! Each sample sends one `stats` request, parses the snapshot and
//! renders three aligned tables — counters, gauges, histograms — with a
//! log2-bucket sparkline per histogram (the same width-compression
//! idiom `dc-obs`'s Gantt renderer uses for timelines). `--once` (the
//! default) prints a single sample and exits, which is what CI
//! artifacts want; `--interval-ms` keeps sampling on one connection
//! until `--samples` runs out or the daemon goes away.
//!
//! Output is plain text, one sample per block, log-friendly: no ANSI,
//! no cursor games. For a given snapshot the rendering is
//! byte-deterministic.
//!
//! `--text` skips the dashboard entirely: it fetches one snapshot,
//! rebuilds the [`MetricsSnapshot`] from the wire JSON and prints the
//! registry's own text exposition — the bytes `obs-schema-check
//! --metrics` validates in CI.

use dc_obs::metrics::{
    bucket_index, sparkline, HistogramSnapshot, MetricSnapshot, MetricValue, MetricsSnapshot,
    BUCKETS,
};
use dc_store::json::{parse_json, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

/// Sparkline column budget per histogram row.
const SPARK_WIDTH: usize = 16;

fn die(msg: &str) -> ! {
    eprintln!("dc-top: {msg}");
    std::process::exit(1);
}

/// Render a JSON number the way the registry produced it: integer
/// counters/levels print without a trailing `.0`.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Canonical key of one snapshot entry (`name` or `name{k="v",…}` —
/// labels already arrive sorted).
fn canonical_key(m: &Json) -> Option<String> {
    let Some(Json::Str(name)) = m.get("name") else {
        return None;
    };
    let mut key = name.clone();
    if let Some(Json::Obj(labels)) = m.get("labels") {
        if !labels.is_empty() {
            key.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    key.push(',');
                }
                let Json::Str(v) = v else { return None };
                key.push_str(&format!("{k}=\"{v}\""));
            }
            key.push('}');
        }
    }
    Some(key)
}

fn num_field(m: &Json, field: &str) -> f64 {
    match m.get(field) {
        Some(Json::Num(n)) => *n,
        _ => 0.0,
    }
}

/// Dense per-bucket counts for the sparkline, from the sparse
/// `[[upper,count],…]` pairs in the snapshot.
fn dense_buckets(m: &Json) -> Vec<u64> {
    let mut dense = vec![0u64; BUCKETS];
    if let Some(Json::Arr(pairs)) = m.get("buckets") {
        for pair in pairs {
            if let Json::Arr(p) = pair {
                if let (Some(Json::Num(upper)), Some(Json::Num(count))) = (p.first(), p.get(1)) {
                    dense[bucket_index(*upper as u64)] = *count as u64;
                }
            }
        }
    }
    dense
}

/// Rebuild the typed snapshot from a stats response so `--text` can
/// reuse the registry's own exposition renderer byte for byte.
fn snapshot_from_doc(doc: &Json) -> Result<MetricsSnapshot, String> {
    let Some(Json::Arr(metrics)) = doc.get("result").and_then(|r| r.get("metrics")) else {
        return Err("response carries no metrics snapshot".into());
    };
    let mut out = Vec::with_capacity(metrics.len());
    for m in metrics {
        let Some(Json::Str(name)) = m.get("name") else {
            return Err("metric without a name".into());
        };
        let mut labels = Vec::new();
        if let Some(Json::Obj(pairs)) = m.get("labels") {
            for (k, v) in pairs {
                let Json::Str(v) = v else {
                    return Err(format!("{name}: non-string label value"));
                };
                labels.push((k.clone(), v.clone()));
            }
        }
        let value = match m.get("type") {
            Some(Json::Str(t)) if t == "counter" => {
                MetricValue::Counter(num_field(m, "value") as u64)
            }
            Some(Json::Str(t)) if t == "gauge" => MetricValue::Gauge(num_field(m, "value") as i64),
            Some(Json::Str(t)) if t == "histogram" => {
                let mut buckets = Vec::new();
                if let Some(Json::Arr(pairs)) = m.get("buckets") {
                    for pair in pairs {
                        if let Json::Arr(p) = pair {
                            if let (Some(Json::Num(u)), Some(Json::Num(n))) = (p.first(), p.get(1))
                            {
                                buckets.push((*u as u64, *n as u64));
                            }
                        }
                    }
                }
                MetricValue::Histogram(HistogramSnapshot {
                    count: num_field(m, "count") as u64,
                    sum: num_field(m, "sum") as u64,
                    min: num_field(m, "min") as u64,
                    max: num_field(m, "max") as u64,
                    buckets,
                })
            }
            _ => return Err(format!("{name}: unknown metric type")),
        };
        out.push(MetricSnapshot {
            name: name.clone(),
            labels,
            value,
        });
    }
    Ok(MetricsSnapshot { metrics: out })
}

/// Render one stats response document as the dashboard block.
fn render(doc: &Json) -> Result<String, String> {
    use std::fmt::Write as _;
    let Some(Json::Arr(metrics)) = doc.get("result").and_then(|r| r.get("metrics")) else {
        return Err("response carries no metrics snapshot".into());
    };
    let mut counters: Vec<(String, String)> = Vec::new();
    let mut gauges: Vec<(String, String)> = Vec::new();
    // key, spark, count, p50, p90, p99, max
    let mut hists: Vec<(String, String, [String; 5])> = Vec::new();
    for m in metrics {
        let Some(key) = canonical_key(m) else {
            continue;
        };
        match m.get("type") {
            Some(Json::Str(t)) if t == "counter" => {
                counters.push((key, fmt_num(num_field(m, "value"))));
            }
            Some(Json::Str(t)) if t == "gauge" => {
                gauges.push((key, fmt_num(num_field(m, "value"))));
            }
            Some(Json::Str(t)) if t == "histogram" => {
                let cols = ["count", "p50", "p90", "p99", "max"].map(|f| fmt_num(num_field(m, f)));
                hists.push((key, sparkline(&dense_buckets(m), SPARK_WIDTH), cols));
            }
            _ => {}
        }
    }

    let key_width = counters
        .iter()
        .map(|(k, _)| k.len())
        .chain(gauges.iter().map(|(k, _)| k.len()))
        .chain(hists.iter().map(|(k, _, _)| k.len()))
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    let scalar_table = |out: &mut String, title: &str, rows: &[(String, String)]| {
        if rows.is_empty() {
            return;
        }
        let vw = rows.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let _ = writeln!(out, "{title}");
        for (k, v) in rows {
            let _ = writeln!(out, "  {k:<key_width$}  {v:>vw$}");
        }
    };
    scalar_table(&mut out, "counters", &counters);
    scalar_table(&mut out, "gauges", &gauges);
    if !hists.is_empty() {
        let headers = ["count", "p50", "p90", "p99", "max"];
        let mut widths = headers.map(str::len);
        for (_, _, cols) in &hists {
            for (w, c) in widths.iter_mut().zip(cols) {
                *w = (*w).max(c.len());
            }
        }
        let _ = write!(
            out,
            "histograms {:spark$}",
            "",
            spark = (key_width + SPARK_WIDTH + 4).saturating_sub("histograms".len())
        );
        for (h, w) in headers.iter().zip(widths) {
            let _ = write!(out, "  {h:>w$}");
        }
        out.push('\n');
        for (key, spark, cols) in &hists {
            let _ = write!(out, "  {key:<key_width$}  [{spark}]");
            for (c, w) in cols.iter().zip(widths) {
                let _ = write!(out, "  {c:>w$}");
            }
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics registered)\n");
    }
    Ok(out)
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream =
            TcpStream::connect(addr).unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
        let reader = BufReader::new(
            stream
                .try_clone()
                .unwrap_or_else(|e| die(&format!("clone stream: {e}"))),
        );
        Conn {
            reader,
            writer: stream,
            next_id: 1,
        }
    }

    fn stats(&mut self) -> Json {
        let id = self.next_id;
        self.next_id += 1;
        let line = format!("{{\"id\":\"top{id}\",\"verb\":\"stats\"}}\n");
        self.writer
            .write_all(line.as_bytes())
            .unwrap_or_else(|e| die(&format!("send failed: {e}")));
        let mut buf = String::new();
        match self.reader.read_line(&mut buf) {
            Ok(0) => die("daemon closed the connection"),
            Ok(_) => {}
            Err(e) => die(&format!("read failed: {e}")),
        }
        parse_json(buf.trim_end_matches('\n'))
            .unwrap_or_else(|e| die(&format!("bad response: {e}")))
    }
}

fn main() -> ExitCode {
    let mut connect = None;
    let mut interval_ms: Option<u64> = None;
    let mut samples: Option<u64> = None;
    let mut text = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect")),
            "--once" => interval_ms = None,
            "--text" => text = true,
            "--interval-ms" => {
                interval_ms = Some(
                    value("--interval-ms")
                        .parse()
                        .unwrap_or_else(|_| die("--interval-ms needs an integer")),
                )
            }
            "--samples" => {
                samples = Some(
                    value("--samples")
                        .parse()
                        .unwrap_or_else(|_| die("--samples needs an integer")),
                )
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = connect else {
        eprintln!(
            "usage: dc-top --connect HOST:PORT [--text | --once | --interval-ms N [--samples N]]"
        );
        return ExitCode::from(2);
    };
    let mut conn = Conn::open(&addr);
    if text {
        match snapshot_from_doc(&conn.stats()) {
            Ok(snap) => print!("{}", snap.render_text()),
            Err(e) => die(&e),
        }
        return ExitCode::SUCCESS;
    }
    let mut sample = 0u64;
    loop {
        sample += 1;
        let doc = conn.stats();
        println!("dc-top — {addr} — sample {sample}");
        match render(&doc) {
            Ok(block) => print!("{block}"),
            Err(e) => die(&e),
        }
        let Some(ms) = interval_ms else { break };
        if samples.is_some_and(|n| sample >= n) {
            break;
        }
        println!();
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_obs::metrics::Registry;

    fn sample_doc() -> Json {
        let reg = Registry::new();
        reg.counter("dc_server_requests_total", &[("verb", "submit")])
            .add(12);
        reg.gauge("dc_pool_queue_depth", &[]).set(3);
        let h = reg.histogram("dc_server_queue_wait_us", &[]);
        for v in [0u64, 5, 5, 120, 4000] {
            h.observe(v);
        }
        let response = format!(
            "{{\"id\":\"top1\",\"ok\":true,\"result\":{}}}",
            reg.snapshot().to_json()
        );
        parse_json(&response).expect("well-formed")
    }

    #[test]
    fn renders_aligned_tables_with_sparklines() {
        let out = render(&sample_doc()).expect("renders");
        assert!(out.contains("counters\n"));
        assert!(out.contains("dc_server_requests_total{verb=\"submit\"}"));
        assert!(out.contains("gauges\n"));
        assert!(out.contains("histograms"));
        // Histogram row: count and the p50 upper bound (bucket [4,7]).
        let hist_line = out
            .lines()
            .find(|l| l.contains("dc_server_queue_wait_us"))
            .expect("histogram row");
        assert!(hist_line.contains('['));
        assert!(hist_line.contains("  5  "), "count column: {hist_line}");
        // Rendering is deterministic.
        assert_eq!(out, render(&sample_doc()).expect("renders"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let doc = parse_json("{\"id\":1,\"ok\":true,\"result\":{\"metrics\":[]}}").unwrap();
        assert_eq!(render(&doc).unwrap(), "(no metrics registered)\n");
    }

    #[test]
    fn text_mode_round_trips_the_exposition() {
        // The wire JSON carries everything the renderer needs: the
        // rebuilt snapshot's exposition matches the source registry's
        // byte for byte.
        let reg = Registry::new();
        reg.counter("dc_server_requests_total", &[("verb", "submit")])
            .add(12);
        reg.gauge("dc_pool_queue_depth", &[]).set(3);
        let h = reg.histogram("dc_server_queue_wait_us", &[]);
        for v in [0u64, 5, 5, 120, 4000] {
            h.observe(v);
        }
        let snap = snapshot_from_doc(&sample_doc()).expect("round-trips");
        assert_eq!(snap.render_text(), reg.snapshot().render_text());
    }

    #[test]
    fn non_stats_response_is_an_error() {
        let doc = parse_json("{\"id\":1,\"ok\":true,\"result\":{\"job\":\"job-1\"}}").unwrap();
        assert!(render(&doc).is_err());
    }
}
