//! `dc-server-client`: a scripted client for `dc-server` sessions.
//!
//! ```text
//! dc-server-client --connect HOST:PORT [--script PATH] [--events PATH]
//! ```
//!
//! Runs a small session script (from `--script`, else stdin) against a
//! live daemon, printing every wire line it receives and exiting
//! non-zero the moment an expectation fails — which is exactly what a
//! CI smoke job wants. Request ids are auto-assigned (`c1`, `c2`, …).
//!
//! Script commands (one per line, `#` starts a comment; `$name` tokens
//! substitute a variable bound by `submit`):
//!
//! ```text
//! submit A {"entries":["Sort","Grep"],"seed":42}   # bind $A to the job name
//! await $A                 # poll status until the job is terminal
//! status $A                # one status request
//! stream $A                # replay+follow events (appended to --events)
//! cancel $A
//! stats                    # snapshot the daemon's metrics registry
//! shutdown
//! send <raw line>          # arbitrary bytes on the wire, read one reply
//! send-bytes N             # a garbage line of N bytes, read one reply
//! sleep-ms N
//! expect-ok                # last response has "ok":true
//! expect-error CODE        # last response is an error with this code
//! expect-state STATE       # last response result.state == STATE
//! expect-sims N            # last response result.simulations == N
//! expect-sims-gt N
//! expect-metric KEY OP N   # assert against the last stats snapshot:
//!                          # KEY is the canonical metric key, e.g.
//!                          # dc_server_requests_total{verb="submit"},
//!                          # with an optional histogram field suffix
//!                          # (.count .sum .min .max .p50 .p90 .p99);
//!                          # OP is one of == != < <= > >=
//! save-output PATH         # write result.output of the last response,
//!                          # byte-exact, to PATH
//! ```

use dc_store::json::{parse_json, Json};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    vars: HashMap<String, String>,
    /// Raw bytes of the last non-frame response line.
    last: Option<String>,
    events_out: Option<std::fs::File>,
}

fn fail(line_no: usize, msg: &str) -> ! {
    eprintln!("dc-server-client: line {line_no}: {msg}");
    std::process::exit(1);
}

impl Client {
    fn send_raw(&mut self, line_no: usize, line: &str) {
        if self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .is_err()
        {
            fail(line_no, "connection closed while sending");
        }
    }

    fn read_line(&mut self, line_no: usize) -> String {
        let mut buf = String::new();
        match self.reader.read_line(&mut buf) {
            Ok(0) => fail(line_no, "connection closed while awaiting a response"),
            Ok(_) => {
                let line = buf.trim_end_matches('\n').to_string();
                println!("{line}");
                line
            }
            Err(e) => fail(line_no, &format!("read failed: {e}")),
        }
    }

    fn request(&mut self, line_no: usize, verb_and_payload: &str) -> String {
        let id = self.next_id;
        self.next_id += 1;
        let line = format!("{{\"id\":\"c{id}\",{verb_and_payload}}}");
        self.send_raw(line_no, &line);
        let response = self.read_line(line_no);
        self.last = Some(response.clone());
        response
    }

    fn last_doc(&self, line_no: usize) -> Json {
        let Some(last) = &self.last else {
            fail(line_no, "no response received yet");
        };
        match parse_json(last) {
            Ok(doc) => doc,
            Err(e) => fail(line_no, &format!("last response is not JSON: {e}")),
        }
    }

    fn subst(&self, line_no: usize, token: &str) -> String {
        if let Some(name) = token.strip_prefix('$') {
            match self.vars.get(name) {
                Some(v) => v.clone(),
                None => fail(line_no, &format!("unbound variable ${name}")),
            }
        } else {
            token.to_string()
        }
    }
}

/// `result.<field>` of a response document.
fn result_field<'a>(doc: &'a Json, field: &str) -> Option<&'a Json> {
    doc.get("result")?.get(field)
}

/// Extract the byte-exact rendering of `"output":{…}` from a raw
/// response line: brace matching with JSON string/escape awareness, so
/// braces inside strings cannot derail it.
fn extract_output(raw: &str) -> Option<&str> {
    let at = raw.find("\"output\":")?;
    let start = at + "\"output\":".len();
    let bytes = raw.as_bytes();
    if bytes.get(start) != Some(&b'{') {
        return None;
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes[start..].iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&raw[start..start + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Histogram field suffixes `expect-metric` accepts after the key.
const HIST_FIELDS: [&str; 7] = ["count", "sum", "min", "max", "p50", "p90", "p99"];

/// Look a metric up in the last `stats` response by canonical key
/// (`name` or `name{k="v",…}`, labels sorted), with an optional
/// histogram field suffix (`.p99` etc.). Counters and gauges read
/// their `value` field.
fn metric_value(doc: &Json, key: &str) -> Result<f64, String> {
    // Split a trailing `.field` off the key; metric names are
    // snake_case (no dots), so any dot after the last `}` (or at all,
    // for label-less keys) is a field separator.
    let (key, field) = match key.rsplit_once('.') {
        Some((k, f)) if HIST_FIELDS.contains(&f) && !f.contains('}') => (k, Some(f)),
        _ => (key, None),
    };
    let Some(Json::Arr(metrics)) = doc.get("result").and_then(|r| r.get("metrics")) else {
        return Err("last response is not a stats snapshot".into());
    };
    for m in metrics {
        let Some(Json::Str(name)) = m.get("name") else {
            continue;
        };
        let mut canonical = name.clone();
        if let Some(Json::Obj(labels)) = m.get("labels") {
            if !labels.is_empty() {
                canonical.push('{');
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        canonical.push(',');
                    }
                    let Json::Str(v) = v else { continue };
                    canonical.push_str(&format!("{k}=\"{v}\""));
                }
                canonical.push('}');
            }
        }
        if canonical != key {
            continue;
        }
        let field = field.unwrap_or("value");
        return match m.get(field) {
            Some(Json::Num(n)) => Ok(*n),
            _ => Err(format!("metric has no numeric field {field:?}")),
        };
    }
    Err("no such metric in the snapshot".into())
}

/// The inner `dc-obs` event of a stream frame `{"id":…,"event":{…}}`,
/// byte-exact (the frame renderer appends the event last, so stripping
/// the final `}` recovers it).
fn extract_event(raw: &str) -> Option<&str> {
    let at = raw.find("\"event\":")?;
    let inner = &raw[at + "\"event\":".len()..raw.len().checked_sub(1)?];
    inner.starts_with('{').then_some(inner)
}

const AWAIT_POLLS: usize = 4000;
const AWAIT_INTERVAL_MS: u64 = 25;

fn run_script(client: &mut Client, script: &str) {
    for (idx, raw_line) in script.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((cmd, rest)) => (cmd, rest.trim()),
            None => (line, ""),
        };
        match cmd {
            "submit" => {
                let (var, job) = rest
                    .split_once(char::is_whitespace)
                    .unwrap_or_else(|| fail(line_no, "usage: submit VAR {job json}"));
                let response = client.request(
                    line_no,
                    &format!("\"verb\":\"submit\",\"job\":{}", job.trim()),
                );
                if let Ok(doc) = parse_json(&response) {
                    if let Some(Json::Str(name)) = result_field(&doc, "job") {
                        client.vars.insert(var.to_string(), name.clone());
                    }
                }
            }
            "status" | "cancel" => {
                let job = client.subst(line_no, rest);
                client.request(line_no, &format!("\"verb\":\"{cmd}\",\"job\":\"{job}\""));
            }
            "await" => {
                let job = client.subst(line_no, rest);
                let mut done = false;
                for _ in 0..AWAIT_POLLS {
                    let response =
                        client.request(line_no, &format!("\"verb\":\"status\",\"job\":\"{job}\""));
                    let doc = parse_json(&response)
                        .unwrap_or_else(|e| fail(line_no, &format!("bad response: {e}")));
                    match result_field(&doc, "state") {
                        Some(Json::Str(s)) if s == "done" || s == "cancelled" || s == "failed" => {
                            done = true;
                            break;
                        }
                        Some(Json::Str(_)) => {
                            std::thread::sleep(std::time::Duration::from_millis(AWAIT_INTERVAL_MS))
                        }
                        _ => fail(line_no, &format!("await {job}: no state in {response}")),
                    }
                }
                if !done {
                    fail(
                        line_no,
                        &format!("await {job}: not terminal after {AWAIT_POLLS} polls"),
                    );
                }
            }
            "stream" => {
                let job = client.subst(line_no, rest);
                let id = client.next_id;
                client.next_id += 1;
                client.send_raw(
                    line_no,
                    &format!("{{\"id\":\"c{id}\",\"verb\":\"stream\",\"job\":\"{job}\"}}"),
                );
                loop {
                    let line = client.read_line(line_no);
                    if let Some(event) = extract_event(&line) {
                        if let Some(out) = &mut client.events_out {
                            let _ = writeln!(out, "{event}");
                        }
                        continue;
                    }
                    client.last = Some(line);
                    break;
                }
            }
            "stats" => {
                client.request(line_no, "\"verb\":\"stats\"");
            }
            "shutdown" => {
                client.request(line_no, "\"verb\":\"shutdown\"");
            }
            "send" => {
                client.send_raw(line_no, rest);
                let response = client.read_line(line_no);
                client.last = Some(response);
            }
            "send-bytes" => {
                let n: usize = rest
                    .parse()
                    .unwrap_or_else(|_| fail(line_no, "usage: send-bytes N"));
                let garbage = vec![b'x'; n];
                if client
                    .writer
                    .write_all(&garbage)
                    .and_then(|()| client.writer.write_all(b"\n"))
                    .is_err()
                {
                    fail(line_no, "connection closed while sending");
                }
                let response = client.read_line(line_no);
                client.last = Some(response);
            }
            "sleep-ms" => {
                let ms: u64 = rest
                    .parse()
                    .unwrap_or_else(|_| fail(line_no, "usage: sleep-ms N"));
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            "expect-ok" => {
                let doc = client.last_doc(line_no);
                if doc.get("ok") != Some(&Json::Bool(true)) {
                    fail(line_no, &format!("expected ok, got {:?}", client.last));
                }
            }
            "expect-error" => {
                let doc = client.last_doc(line_no);
                let code = doc.get("error").and_then(|e| e.get("code"));
                match code {
                    Some(Json::Str(code)) if code == rest => {}
                    _ => fail(
                        line_no,
                        &format!("expected error code {rest:?}, got {:?}", client.last),
                    ),
                }
            }
            "expect-state" => {
                let doc = client.last_doc(line_no);
                match result_field(&doc, "state") {
                    Some(Json::Str(s)) if s == rest => {}
                    _ => fail(
                        line_no,
                        &format!("expected state {rest:?}, got {:?}", client.last),
                    ),
                }
            }
            "expect-sims" | "expect-sims-gt" => {
                let want: f64 = rest
                    .parse()
                    .unwrap_or_else(|_| fail(line_no, "usage: expect-sims N"));
                let doc = client.last_doc(line_no);
                let got = match result_field(&doc, "simulations") {
                    Some(Json::Num(n)) => *n,
                    _ => fail(
                        line_no,
                        &format!("no simulations in last response {:?}", client.last),
                    ),
                };
                let pass = if cmd == "expect-sims" {
                    got == want
                } else {
                    got > want
                };
                if !pass {
                    fail(line_no, &format!("{cmd} {want}: got {got}"));
                }
            }
            "expect-metric" => {
                let mut parts = rest.split_whitespace();
                let (key, op, want) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(k), Some(o), Some(v)) => (k, o, v),
                    _ => fail(line_no, "usage: expect-metric KEY OP N"),
                };
                let want: f64 = want
                    .parse()
                    .unwrap_or_else(|_| fail(line_no, "expect-metric: N must be a number"));
                let doc = client.last_doc(line_no);
                let got = metric_value(&doc, key)
                    .unwrap_or_else(|e| fail(line_no, &format!("expect-metric {key}: {e}")));
                let pass = match op {
                    "==" => got == want,
                    "!=" => got != want,
                    "<" => got < want,
                    "<=" => got <= want,
                    ">" => got > want,
                    ">=" => got >= want,
                    _ => fail(line_no, &format!("expect-metric: unknown op {op:?}")),
                };
                if !pass {
                    fail(
                        line_no,
                        &format!("expect-metric {key} {op} {want}: got {got}"),
                    );
                }
            }
            "save-output" => {
                let Some(last) = client.last.clone() else {
                    fail(line_no, "no response to save");
                };
                let Some(output) = extract_output(&last) else {
                    fail(line_no, &format!("no output object in {last:?}"));
                };
                if let Err(e) = std::fs::write(rest, format!("{output}\n")) {
                    fail(line_no, &format!("save-output {rest}: {e}"));
                }
            }
            other => fail(line_no, &format!("unknown command {other:?}")),
        }
    }
}

fn main() -> ExitCode {
    let mut connect = None;
    let mut script_path = None;
    let mut events_path = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(0, &format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect")),
            "--script" => script_path = Some(value("--script")),
            "--events" => events_path = Some(value("--events")),
            other => fail(0, &format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = connect else {
        eprintln!("usage: dc-server-client --connect HOST:PORT [--script PATH] [--events PATH]");
        return ExitCode::from(2);
    };
    let script = match &script_path {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(0, &format!("--script {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(0, &format!("reading stdin: {e}")));
            buf
        }
    };
    let stream =
        TcpStream::connect(&addr).unwrap_or_else(|e| fail(0, &format!("connect {addr}: {e}")));
    let reader = BufReader::new(
        stream
            .try_clone()
            .unwrap_or_else(|e| fail(0, &format!("clone stream: {e}"))),
    );
    let events_out = events_path.map(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| fail(0, &format!("--events {path}: {e}")))
    });
    let mut client = Client {
        reader,
        writer: stream,
        next_id: 1,
        vars: HashMap::new(),
        last: None,
        events_out,
    };
    run_script(&mut client, &script);
    ExitCode::SUCCESS
}
