//! The `subset` verb: Exhibit SS computed daemon-side.
//!
//! A `subset` request characterizes the eleven data-analysis workloads
//! (through the process-wide memoizing cache — a warm daemon answers
//! with **zero** simulations), runs the [`dcbench::stats`] pipeline
//! (z-score → Jacobi PCA → agglomerative clustering → medoids), and
//! returns the canonical subset JSON. The verb is synchronous, like
//! `stats`: the exhibit for quick windows is a sub-second computation
//! on a warm cache, and the result is a pure function of the spec, so
//! there is no job state to track.
//!
//! The `output` object is rendered by [`dcbench::stats::Subset::to_json`]
//! — the same renderer the `subsetting` example uses — so a daemon
//! response byte-matches the offline artifact for the same spec. The
//! `simulations` count sits outside `output`, mirroring the job-status
//! envelope: it names this process's cache history, not the result.

use crate::protocol::{code, ProtoError, SubsetSpec};
use dc_cpu::CpuConfig;
use dc_obs::Recorder;
use dcbench::registry::BenchmarkId;
use dcbench::{pool, Characterizer};

/// Per-entry telemetry ring capacity (same bound as the job executor:
/// an entry lookup emits at most two events).
const ENTRY_EVENT_CAP: usize = 16;

/// Compute Exhibit SS for `spec`. Returns the rendered result object
/// `{"output":…,"simulations":N}` where `output` is the canonical
/// subset JSON and `simulations` counts the cache misses this request
/// actually simulated (0 on a warm daemon). A panic anywhere in the
/// pipeline is caught and surfaced as a structured error — the daemon
/// never dies with a request.
pub fn run(spec: &SubsetSpec) -> Result<String, ProtoError> {
    let spec = *spec;
    let outcome = std::panic::catch_unwind(move || {
        let base = Characterizer::new(
            CpuConfig::westmere_e5645(),
            spec.window.sim_options(),
            spec.seed,
        );
        // Fan the eleven entries across the shared worker pool with a
        // private telemetry ring per entry, exactly like the job
        // executor: the simulation count stays exact per request even
        // when jobs run concurrently against the same cache.
        let results = pool::parallel_map(BenchmarkId::data_analysis().to_vec(), move |_, id| {
            let (rec, ring) = Recorder::ring(ENTRY_EVENT_CAP);
            let c = base.clone().with_recorder(rec);
            (c.run(id), ring.take())
        });
        let mut simulations = 0u64;
        let mut rows = Vec::with_capacity(results.len());
        for (metrics, events) in results {
            simulations += events
                .iter()
                .filter(|e| e.kind == "cache_miss" || e.kind == "sim_uncached")
                .count() as u64;
            rows.push(metrics);
        }
        let subset = dcbench::stats::subset_of_metrics(&rows, spec.k as usize, spec.linkage);
        let output = subset.to_json(spec.window.as_str(), spec.seed);
        let mut result = String::with_capacity(output.len() + 32);
        result.push_str("{\"output\":");
        result.push_str(&output);
        use std::fmt::Write as _;
        let _ = write!(result, ",\"simulations\":{simulations}");
        result.push('}');
        result
    });
    outcome.map_err(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "subset computation panicked".into());
        ProtoError::new(code::BAD_REQUEST, format!("subset failed: {msg}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Window;
    use dcbench::stats::Linkage;

    #[test]
    fn warm_subset_matches_offline_render_with_zero_simulations() {
        let spec = SubsetSpec {
            k: 4,
            linkage: Linkage::Complete,
            window: Window::Quick,
            seed: 0x55E7_2013,
        };
        let cold = run(&spec).expect("computes");
        let warm = run(&spec).expect("computes");
        // Cold ran some simulations; warm served every row from cache.
        assert!(cold.ends_with('}'));
        assert!(warm.contains("\"simulations\":0"), "warm: {warm}");
        // The output object is byte-identical cold vs warm, and
        // byte-matches the offline pipeline for the same spec.
        let strip = |s: &str| s[..s.rfind(",\"simulations\":").expect("envelope")].to_string();
        assert_eq!(strip(&cold), strip(&warm));
        let bench = Characterizer::new(
            CpuConfig::westmere_e5645(),
            spec.window.sim_options(),
            spec.seed,
        );
        let offline = dcbench::report::subset_exhibit(&bench, 4, Linkage::Complete)
            .to_json("quick", spec.seed);
        assert_eq!(strip(&cold), format!("{{\"output\":{offline}"));
    }
}
