//! Jobs: the unit of work behind `submit`, and the per-job event log
//! that `stream` replays and follows.
//!
//! A job owns a dedicated [`dc_obs::Recorder`] whose sink appends into
//! an [`EventLog`] — an append-only, closeable in-memory log that any
//! number of `stream` requests can replay from the start and then
//! follow live (a [`std::sync::Condvar`] wakes followers as events
//! land, and closing the log releases them for good). Because each job
//! gets its own recorder, the log's `seq` numbers are gapless from 0
//! and the whole stream passes the `dc-obs` schema check on its own.
//!
//! # Stream determinism
//!
//! Entries fan out across [`dcbench::pool`] workers, which would make
//! the *interleaving* of their cache telemetry nondeterministic. The
//! job therefore captures each entry's events in a private ring during
//! the parallel phase and re-emits them into the job log **in entry
//! order** on the executor thread afterwards: the same spec yields the
//! same event sequence at any worker count. The `simulations` figure in
//! a finished job's status is counted from those captured events
//! (`cache_miss` + `sim_uncached`), so it is exact per job even when
//! other jobs run concurrently against the same process-wide cache.

use crate::protocol::{push_f64, JobSpec};
use dc_cpu::CpuConfig;
use dc_obs::{Event, Recorder, Sink, Value};
use dc_store::json::write_json_string;
use dcbench::{pool, Characterizer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Per-entry telemetry ring capacity. An entry lookup emits at most two
/// events (`cache_miss` + `store_miss`); 16 leaves headroom for future
/// kinds without ever dropping.
const ENTRY_EVENT_CAP: usize = 16;

fn relock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

struct LogState {
    events: Vec<Event>,
    closed: bool,
}

/// An append-only, closeable event log with blocking follow.
pub struct EventLog {
    state: Mutex<LogState>,
    grew: Condvar,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            state: Mutex::new(LogState {
                events: Vec::new(),
                closed: false,
            }),
            grew: Condvar::new(),
        }
    }
}

impl EventLog {
    fn push(&self, event: Event) {
        let mut st = relock(&self.state);
        debug_assert!(!st.closed, "no events after close");
        st.events.push(event);
        drop(st);
        self.grew.notify_all();
    }

    /// Close the log: no more events will arrive; followers drain what
    /// is left and stop.
    pub fn close(&self) {
        relock(&self.state).closed = true;
        self.grew.notify_all();
    }

    /// Copy of everything logged so far.
    pub fn snapshot(&self) -> Vec<Event> {
        relock(&self.state).events.clone()
    }

    /// Events from index `from` on, blocking while the log is open and
    /// has nothing new. Returns the new events plus whether the log is
    /// now closed; a closed, fully-drained log returns `(vec![], true)`
    /// immediately.
    pub fn wait_from(&self, from: usize) -> (Vec<Event>, bool) {
        let mut st = relock(&self.state);
        loop {
            if st.events.len() > from {
                return (st.events[from..].to_vec(), st.closed);
            }
            if st.closed {
                return (Vec::new(), true);
            }
            st = self.grew.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// The sink wiring a job's recorder into its [`EventLog`].
struct LogSink(Arc<EventLog>);

impl Sink for LogSink {
    fn record(&mut self, event: &Event) {
        self.0.push(event.clone());
    }
}

/// Where a job is in its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for an executor.
    Queued,
    /// An executor is characterizing it.
    Running,
    /// Finished; `output` is available.
    Done,
    /// Cancelled while queued (by a client or by shutdown).
    Cancelled,
    /// The characterization panicked; `error` says how.
    Failed,
}

impl JobState {
    /// The wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

struct JobStatus {
    state: JobState,
    simulations: u64,
    /// Rendered deterministic `output` JSON object, once done.
    output: Option<String>,
    /// Failure detail, once failed.
    error: Option<String>,
}

/// One submitted characterization job.
pub struct Job {
    /// Server-assigned name (`"job-N"`, N in submission order).
    pub name: String,
    /// The validated spec.
    pub spec: JobSpec,
    /// The job's event log (what `stream` replays).
    pub log: Arc<EventLog>,
    recorder: Recorder,
    status: Mutex<JobStatus>,
    /// Accept time on the server's injected clock (µs), stamped at
    /// submit so the executor can observe queue wait when it pops the
    /// job. Zero until stamped.
    enqueued_at_us: AtomicU64,
}

impl Job {
    /// A freshly accepted job in the `Queued` state.
    pub fn new(name: String, spec: JobSpec) -> Arc<Job> {
        let log = Arc::new(EventLog::default());
        let recorder = Recorder::with_sink(Box::new(LogSink(Arc::clone(&log))));
        Arc::new(Job {
            name,
            spec,
            log,
            recorder,
            status: Mutex::new(JobStatus {
                state: JobState::Queued,
                simulations: 0,
                output: None,
                error: None,
            }),
            enqueued_at_us: AtomicU64::new(0),
        })
    }

    /// Stamp the accept time (server clock, µs).
    pub fn set_enqueued_at(&self, t_us: u64) {
        self.enqueued_at_us.store(t_us, Ordering::Relaxed);
    }

    /// The accept time stamped by [`Job::set_enqueued_at`].
    pub fn enqueued_at(&self) -> u64 {
        self.enqueued_at_us.load(Ordering::Relaxed)
    }

    /// Current state.
    pub fn state(&self) -> JobState {
        relock(&self.status).state
    }

    /// The `job_queued` event fields (shared by the job log and the
    /// server-wide recorder).
    fn queued_fields(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("job", Value::str(self.name.clone())),
            ("kind", Value::str("characterize")),
            ("entries", Value::U64(self.spec.entries.len() as u64)),
            ("window", Value::str(self.spec.window.as_str())),
            ("seed", Value::U64(self.spec.seed)),
            ("corun", Value::U64(u64::from(self.spec.corun))),
            ("sampled", Value::Bool(self.spec.sampled)),
        ]
    }

    /// Emit `job_queued` into the job's own log and `server_recorder`.
    /// Called exactly once, at accept time, so it is the log's first
    /// event.
    pub fn emit_queued(&self, server_recorder: &Recorder) {
        self.recorder.emit(0, "job_queued", self.queued_fields());
        if server_recorder.is_enabled() {
            server_recorder.emit(0, "job_queued", self.queued_fields());
        }
    }

    fn emit_done(&self, server_recorder: &Recorder, state: JobState, simulations: u64) {
        let fields = || {
            vec![
                ("job", Value::str(self.name.clone())),
                ("state", Value::str(state.as_str())),
                ("simulations", Value::U64(simulations)),
            ]
        };
        self.recorder.emit(0, "job_done", fields());
        if server_recorder.is_enabled() {
            server_recorder.emit(0, "job_done", fields());
        }
        self.log.close();
    }

    /// Cancel a queued job. Fails with the current state if it already
    /// started, finished, or was cancelled (running jobs are not torn
    /// down mid-simulation: the measurement layer is pure compute with
    /// no cancellation points, and a finished result feeds the shared
    /// cache anyway).
    pub fn cancel(&self, server_recorder: &Recorder) -> Result<(), JobState> {
        let mut st = relock(&self.status);
        if st.state != JobState::Queued {
            return Err(st.state);
        }
        st.state = JobState::Cancelled;
        drop(st);
        self.emit_done(server_recorder, JobState::Cancelled, 0);
        Ok(())
    }

    /// Executor-side claim: `Queued` → `Running`. False means the job
    /// was cancelled while waiting and must be skipped.
    pub fn try_start(&self) -> bool {
        let mut st = relock(&self.status);
        if st.state == JobState::Queued {
            st.state = JobState::Running;
            true
        } else {
            false
        }
    }

    /// Run the characterization on the calling (executor) thread. The
    /// caller must have claimed the job via [`Job::try_start`]. A panic
    /// anywhere in the measurement pipeline is caught and recorded as
    /// `Failed` — the daemon never dies with a job.
    pub fn run(&self, server_recorder: &Recorder) {
        let spec = self.spec.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let base = Characterizer::new(
                CpuConfig::westmere_e5645(),
                // Folds in the SMARTS plan when the job asked for it;
                // sampled runs memoize under their own cache key.
                spec.sim_options(),
                spec.seed,
            );
            // Fan entries across the shared worker pool, capturing each
            // entry's telemetry privately; re-emit below in entry order
            // so the job log is deterministic at any worker count.
            pool::parallel_map(spec.entries.clone(), |_, id| {
                let (rec, ring) = Recorder::ring(ENTRY_EVENT_CAP);
                let c = base.clone().with_recorder(rec);
                let metrics = if spec.corun == 1 {
                    c.run(id)
                } else {
                    c.corun(id, spec.corun as usize)
                };
                (metrics, ring.take())
            })
        }));
        match outcome {
            Ok(results) => {
                let mut simulations = 0u64;
                for (_, events) in &results {
                    for ev in events {
                        if ev.kind == "cache_miss" || ev.kind == "sim_uncached" {
                            simulations += 1;
                        }
                        self.recorder.emit(ev.ts, ev.kind, ev.fields.clone());
                    }
                }
                let output = render_output(&spec, results.iter().map(|(m, _)| m));
                let mut st = relock(&self.status);
                st.state = JobState::Done;
                st.simulations = simulations;
                st.output = Some(output);
                drop(st);
                self.emit_done(server_recorder, JobState::Done, simulations);
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                let mut st = relock(&self.status);
                st.state = JobState::Failed;
                st.error = Some(msg);
                drop(st);
                self.emit_done(server_recorder, JobState::Failed, 0);
            }
        }
    }

    /// Render the `status` result object. `simulations` and `output`
    /// appear once the job is done; `error` once it failed. `output` is
    /// the byte-deterministic part — the envelope around it names this
    /// process's history (submission order, cache warmth) on purpose.
    pub fn status_result(&self) -> String {
        let st = relock(&self.status);
        let mut out = String::with_capacity(64);
        out.push_str("{\"job\":");
        write_json_string(&mut out, &self.name);
        out.push_str(",\"state\":");
        write_json_string(&mut out, st.state.as_str());
        if st.state == JobState::Done {
            use std::fmt::Write;
            let _ = write!(out, ",\"simulations\":{}", st.simulations);
            if let Some(output) = &st.output {
                out.push_str(",\"output\":");
                out.push_str(output);
            }
        }
        if let Some(error) = &st.error {
            out.push_str(",\"error\":");
            write_json_string(&mut out, error);
        }
        out.push('}');
        out
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Render the deterministic `output` object for a finished job: the
/// spec echo plus one metric row per entry, in entry order. Every
/// float goes through [`push_f64`] (shortest-round-trip `Display`), so
/// the bytes are identical across processes, worker counts, and cache
/// temperature.
fn render_output<'a>(
    spec: &JobSpec,
    rows: impl Iterator<Item = &'a dc_perfmon::Metrics>,
) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(256 + spec.entries.len() * 256);
    out.push_str("{\"kind\":\"characterize\",\"entries\":[");
    for (i, id) in spec.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, id.name());
    }
    let _ = write!(
        out,
        "],\"window\":\"{}\",\"seed\":{},\"corun\":{},\"sampled\":{},\"rows\":[",
        spec.window.as_str(),
        spec.seed,
        spec.corun,
        spec.sampled
    );
    for (i, m) in rows.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(&mut out, &m.name);
        for (label, v) in [
            ("ipc", m.ipc),
            ("kernel_fraction", m.kernel_fraction),
            ("l1i_mpki", m.l1i_mpki),
            ("itlb_walk_pki", m.itlb_walk_pki),
            ("l2_mpki", m.l2_mpki),
            ("l3_mpki", m.l3_mpki),
            ("l3_hit_ratio", m.l3_hit_ratio),
            ("dtlb_walk_pki", m.dtlb_walk_pki),
            ("branch_misprediction", m.branch_misprediction),
        ] {
            let _ = write!(out, ",\"{label}\":");
            push_f64(&mut out, v);
        }
        out.push_str(",\"stall_breakdown\":[");
        for (j, s) in m.stall_breakdown.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(&mut out, *s);
        }
        let _ = write!(out, "],\"instructions\":{}}}", m.instructions);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Window;
    use dcbench::BenchmarkId;

    fn tiny_spec(entries: Vec<BenchmarkId>, seed: u64) -> JobSpec {
        JobSpec {
            entries,
            window: Window::Quick,
            seed,
            corun: 1,
            sampled: false,
        }
    }

    #[test]
    fn event_log_follows_and_drains_after_close() {
        let log = Arc::new(EventLog::default());
        let mut sink = LogSink(Arc::clone(&log));
        sink.record(&Event {
            seq: 0,
            ts: 0,
            kind: "a",
            fields: vec![],
        });
        let (events, closed) = log.wait_from(0);
        assert_eq!(events.len(), 1);
        assert!(!closed);
        // A follower blocked past the end wakes on close.
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_from(1))
        };
        log.close();
        let (rest, closed) = waiter.join().expect("no panic");
        assert!(rest.is_empty());
        assert!(closed);
        assert_eq!(log.snapshot().len(), 1);
    }

    #[test]
    fn job_runs_to_done_with_deterministic_output() {
        // Seeds nothing else in the workspace uses, so both jobs start
        // cold in the shared process cache.
        let spec = tiny_spec(vec![BenchmarkId::Sort, BenchmarkId::Grep], 0x5EE071);
        let rec = Recorder::disabled();
        let a = Job::new("job-1".into(), spec.clone());
        assert!(a.try_start());
        a.run(&rec);
        assert_eq!(a.state(), JobState::Done);
        let b = Job::new("job-2".into(), spec);
        assert!(b.try_start());
        b.run(&rec);
        let extract = |s: &str| {
            let at = s.find("\"output\":").expect("output present");
            s[at + "\"output\":".len()..s.len() - 1].to_string()
        };
        assert_eq!(
            extract(&a.status_result()),
            extract(&b.status_result()),
            "same spec, byte-identical output"
        );
        // The warm job simulated nothing; the cold one simulated both
        // entries — visible in the envelope, invisible in the output.
        assert!(a.status_result().contains("\"simulations\":2"));
        assert!(b.status_result().contains("\"simulations\":0"));
    }

    #[test]
    fn sampled_jobs_run_to_done_with_their_own_output() {
        // Seed unique to this test so both jobs start cold.
        let mut spec = tiny_spec(vec![BenchmarkId::Sort], 0x5EE074);
        let rec = Recorder::disabled();
        let exact = Job::new("job-e".into(), spec.clone());
        assert!(exact.try_start());
        exact.run(&rec);
        spec.sampled = true;
        let sampled = Job::new("job-s".into(), spec);
        assert!(sampled.try_start());
        sampled.run(&rec);
        assert_eq!(sampled.state(), JobState::Done);
        let s = sampled.status_result();
        assert!(s.contains("\"sampled\":true"));
        // The sampled job re-simulated (its own cache key) and its
        // extrapolated rows differ from the exact ones.
        assert!(s.contains("\"simulations\":1"));
        assert_ne!(s, exact.status_result());
    }

    #[test]
    fn job_log_brackets_the_run_and_closes() {
        let spec = tiny_spec(vec![BenchmarkId::KMeans], 0x5EE072);
        let job = Job::new("job-9".into(), spec);
        let rec = Recorder::disabled();
        job.emit_queued(&rec);
        assert!(job.try_start());
        job.run(&rec);
        let events = job.log.snapshot();
        assert_eq!(events.first().map(|e| e.kind), Some("job_queued"));
        assert_eq!(events.last().map(|e| e.kind), Some("job_done"));
        assert!(events.iter().any(|e| e.kind == "cache_miss"));
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());
        // Log is closed: a follower past the end returns immediately.
        assert_eq!(job.log.wait_from(events.len()), (vec![], true));
    }

    #[test]
    fn cancel_only_wins_while_queued() {
        let spec = tiny_spec(vec![BenchmarkId::Sort], 0x5EE073);
        let job = Job::new("job-3".into(), spec.clone());
        let rec = Recorder::disabled();
        assert!(job.cancel(&rec).is_ok());
        assert_eq!(job.state(), JobState::Cancelled);
        assert!(!job.try_start(), "cancelled jobs are skipped");
        assert_eq!(job.cancel(&rec), Err(JobState::Cancelled));
        assert!(job.status_result().contains("\"state\":\"cancelled\""));

        let running = Job::new("job-4".into(), spec);
        assert!(running.try_start());
        assert_eq!(running.cancel(&rec), Err(JobState::Running));
    }
}
