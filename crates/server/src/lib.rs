//! `dc-server`: the characterization stack as a long-running daemon.
//!
//! The paper's measurements come from a fleet-side vantage point —
//! long-lived Hadoop services observed over many jobs — while every
//! driver in this repo so far has been a one-shot process: run, print,
//! exit, forget. `dc-server` closes that gap. One daemon process keeps
//! the process-wide memo cache, the `DCBENCH_STORE` warm-start, and the
//! worker pool resident, and any number of clients submit
//! characterization jobs over a line-delimited JSON protocol (stdio or
//! TCP). The second client asking for a sweep the first client already
//! ran is answered from memory: **zero** simulations, byte-identical
//! `output`.
//!
//! Three layers:
//!
//! * [`protocol`] — framing, request parsing, response rendering, the
//!   error-code vocabulary. Total over arbitrary bytes: malformed input
//!   becomes a structured error response, never a panic, never a
//!   dropped connection.
//! * [`jobs`] — the job state machine and the per-job [`jobs::EventLog`]
//!   that `stream` replays and follows; job event streams are
//!   deterministic at any worker count.
//! * [`server`] — the bounded queue, the executor pool, and the
//!   connection loop shared by the TCP and stdio transports.
//! * [`subset`] — the synchronous `subset` verb: Exhibit SS (PCA +
//!   hierarchical subsetting) computed daemon-side from the shared
//!   cache.
//!
//! The `dc-server` binary is the daemon; `dc-server-client` is the
//! scripted client the CI smoke job (and the README examples) drive
//! sessions with. Protocol details live in `DESIGN.md` §12.

#![warn(missing_docs)]

pub mod jobs;
pub mod protocol;
pub mod server;
pub mod subset;

pub use jobs::{EventLog, Job, JobState};
pub use protocol::{JobSpec, ProtoError, Request, RequestId, SubsetSpec, Window};
pub use server::{Server, ServerConfig};
