//! Deterministic I/O fault injection for the store's write path.
//!
//! The same philosophy as the MapReduce engine's `FaultPlan` (PR 1):
//! faults are either pinned to specific append indices or drawn by a
//! seeded chaos mode, so a faulted run is exactly reproducible — the
//! property suites assert recovery behavior against *known* injected
//! damage, not random hope. The chaos draw reuses
//! [`dc_mapreduce::faults::splitmix64`] so "same seed → same faults"
//! rests on one hash across the workspace.
//!
//! Faults model the failure classes a real log file sees:
//!
//! - [`StoreFault::TornWrite`] — the process died (or the device lost
//!   power) mid-`write`: only a prefix of the framed line lands.
//! - [`StoreFault::BitFlip`] — media or transport bit rot inside an
//!   otherwise complete frame.
//! - [`StoreFault::DuplicateRecord`] — a retried write that actually
//!   succeeded twice (the classic at-least-once storage bug).
//! - [`StoreFault::StaleGeneration`] — an epoch-0 header stamped above
//!   the record, modeling a writer that missed a compaction and keeps
//!   appending under a superseded generation.

use dc_mapreduce::faults::splitmix64;
use std::collections::HashMap;

/// One injected fault, applied to a single append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Write only the first `at_byte` bytes of the framed line
    /// (clamped so at least the trailing newline is lost).
    TornWrite {
        /// Byte offset into the framed line where the write tears.
        at_byte: usize,
    },
    /// XOR one bit somewhere in the framed line.
    BitFlip {
        /// Byte offset (taken modulo the line length).
        at_byte: usize,
        /// Bit index within the byte (taken modulo 8).
        bit: u8,
    },
    /// Write the framed line twice back-to-back.
    DuplicateRecord,
    /// Prepend a generation-0 header, marking this append (and any
    /// later ones from the same handle) stale.
    StaleGeneration,
}

/// Chaos-mode parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreChaosSpec {
    /// One in `every` appends is faulted (e.g. 4 → ~25%). Zero is
    /// treated as "never".
    pub every: u64,
    /// Upper bound used when drawing torn/bit-flip byte offsets, so the
    /// drawn offset lands inside typical frames.
    pub max_offset: usize,
}

impl Default for StoreChaosSpec {
    fn default() -> Self {
        StoreChaosSpec {
            every: 4,
            max_offset: 256,
        }
    }
}

/// A deterministic schedule of write-path faults, consulted by
/// `Store::append` with the handle-lifetime append index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreFaultPlan {
    pinned: HashMap<u64, StoreFault>,
    chaos: Option<(u64, StoreChaosSpec)>,
}

impl StoreFaultPlan {
    /// An empty plan: every append lands intact.
    pub fn none() -> Self {
        StoreFaultPlan::default()
    }

    /// A chaos plan: each append's decision is a pure function of
    /// `(seed, append index)`.
    pub fn chaos(seed: u64, spec: StoreChaosSpec) -> Self {
        StoreFaultPlan {
            pinned: HashMap::new(),
            chaos: Some((seed, spec)),
        }
    }

    /// Pin a fault on one specific append index.
    pub fn with_fault(mut self, append_idx: u64, fault: StoreFault) -> Self {
        self.pinned.insert(append_idx, fault);
        self
    }

    /// Number of explicitly pinned faults.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// The fault to inject for this append, if any. Pinned faults take
    /// precedence over chaos draws.
    pub fn fault_for(&self, append_idx: u64) -> Option<StoreFault> {
        if let Some(f) = self.pinned.get(&append_idx) {
            return Some(*f);
        }
        let (seed, spec) = self.chaos?;
        if spec.every == 0 {
            return None;
        }
        let h = splitmix64(seed ^ append_idx.wrapping_mul(0x5851_F42D_4C95_7F2D));
        if !h.is_multiple_of(spec.every) {
            return None;
        }
        let offset = (h >> 8) as usize % spec.max_offset.max(1);
        Some(match (h >> 2) % 4 {
            0 => StoreFault::TornWrite { at_byte: offset },
            1 => StoreFault::BitFlip {
                at_byte: offset,
                bit: (h >> 40) as u8 % 8,
            },
            2 => StoreFault::DuplicateRecord,
            _ => StoreFault::StaleGeneration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_faults_hit_their_append_only() {
        let plan = StoreFaultPlan::none().with_fault(2, StoreFault::DuplicateRecord);
        assert_eq!(plan.fault_for(0), None);
        assert_eq!(plan.fault_for(1), None);
        assert_eq!(plan.fault_for(2), Some(StoreFault::DuplicateRecord));
        assert_eq!(plan.fault_for(3), None);
    }

    #[test]
    fn chaos_is_deterministic_per_seed_and_roughly_rate_limited() {
        let spec = StoreChaosSpec::default();
        let a = StoreFaultPlan::chaos(42, spec);
        let b = StoreFaultPlan::chaos(42, spec);
        let c = StoreFaultPlan::chaos(43, spec);
        let draws_a: Vec<_> = (0..512).map(|i| a.fault_for(i)).collect();
        let draws_b: Vec<_> = (0..512).map(|i| b.fault_for(i)).collect();
        let draws_c: Vec<_> = (0..512).map(|i| c.fault_for(i)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same faults");
        assert_ne!(draws_a, draws_c, "different seeds should differ somewhere");
        let faulted = draws_a.iter().filter(|f| f.is_some()).count();
        assert!(
            (64..256).contains(&faulted),
            "~1 in 4 of 512 appends faulted, got {faulted}"
        );
    }

    #[test]
    fn zero_rate_chaos_never_faults() {
        let plan = StoreFaultPlan::chaos(
            9,
            StoreChaosSpec {
                every: 0,
                max_offset: 64,
            },
        );
        assert!((0..256).all(|i| plan.fault_for(i).is_none()));
    }
}
