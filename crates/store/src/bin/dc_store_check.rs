//! `dc-store-check`: offline verifier for a dc-store log file.
//!
//! Scans the log read-only, reports what recovery would serve, and
//! (optionally) compacts it. Exit status is the contract — CI's
//! store-recovery job runs this over a log that survived a SIGKILL:
//!
//! - `0`: every frame verified (or, without `--strict`, damage was
//!   limited to what recovery handles: a torn tail, quarantined lines,
//!   stale/superseded frames);
//! - `1`: usage or I/O error;
//! - `2`: `--strict` and the log carries any damage at all.
//!
//! ```text
//! dc-store-check [--strict] [--compact] <store.log>
//! ```

use dc_store::{scan, Store};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut strict = false;
    let mut compact = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            "--compact" => compact = true,
            "--help" | "-h" => {
                eprintln!("usage: dc-store-check [--strict] [--compact] <store.log>");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("dc-store-check: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: dc-store-check [--strict] [--compact] <store.log>");
        return ExitCode::FAILURE;
    };

    let recovery = match scan(std::path::Path::new(&path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dc-store-check: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entries: std::collections::BTreeSet<&str> = recovery
        .records
        .iter()
        .map(|r| r.key.entry.as_str())
        .collect();
    println!("{path}: generation {}", recovery.generation);
    println!(
        "  live records:    {} ({} distinct entr{})",
        recovery.records.len(),
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" }
    );
    println!("  corrupt skipped: {}", recovery.corrupt_skipped);
    println!("  stale skipped:   {}", recovery.stale_skipped);
    println!("  superseded:      {}", recovery.superseded);
    println!("  torn tail:       {} byte(s)", recovery.truncated_bytes);
    if !recovery.header_valid && recovery.valid_prefix > 0 {
        println!("  header:          INVALID (records salvaged best-effort)");
    }

    if compact {
        // Opening repairs the tail / header; compaction then drops the
        // quarantined and superseded frames.
        match Store::open(&path).and_then(|(mut s, _)| s.compact()) {
            Ok(stats) => println!(
                "  compacted:       {} live kept, {} dropped, now generation {}",
                stats.live, stats.dropped, stats.generation
            ),
            Err(e) => {
                eprintln!("dc-store-check: compact {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let damaged = !recovery.is_clean()
        || recovery.superseded > 0
        || (!recovery.header_valid && recovery.valid_prefix > 0);
    if strict && damaged {
        eprintln!("dc-store-check: {path}: damage found (strict mode)");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
