//! The workspace's hardened JSON reader.
//!
//! Two consumers parse JSON off disk: the `dc-obs` event-schema
//! validator in `dc_benches::schema` (which re-exports this module, its
//! original home) and the store's record recovery in [`crate::log`].
//! Both read files that may be truncated mid-write, bit-flipped, or
//! adversarial, so the contract is strict: **every** malformed input
//! comes back as `Err`, never a panic and never a stack overflow. The
//! fuzz suites in `tests/schema_fuzz.rs` and
//! `tests/store_properties.rs` pin that contract.
//!
//! The parser is hand-rolled rather than a dependency because the
//! workspace is offline-vendored and the subset of JSON the stack emits
//! is small and stable.

/// A parsed JSON value (the subset the stack emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (a non-finite f64 serializes as this).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Maximum container nesting [`parse_json`] accepts. The recursive
/// descent would otherwise turn attacker-depth input (`[[[[…`) into a
/// stack overflow — an abort, not an `Err`. Real event lines and store
/// records nest three levels deep.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key \"{key}\" at byte {}", self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| format!("invalid \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Parse one JSON document. Trailing non-whitespace, duplicate object
/// keys, and nesting beyond [`MAX_DEPTH`] levels are errors — the
/// parser reads artifacts that may be truncated or corrupt, so every
/// malformation must surface as `Err`, never a panic.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

/// Append `s` to `out` as a JSON string literal (the exact escaping
/// rules `dc-obs` uses, so both serializers in the workspace agree).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_value_shapes_the_stack_emits() {
        let doc =
            parse_json(r#"{"a":"x\n\"y\"","b":[1,-2.5e3,null,true],"c":{}}"#).expect("valid json");
        assert_eq!(doc.get("a"), Some(&Json::Str("x\n\"y\"".to_string())));
        match doc.get("b") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1], Json::Num(-2500.0));
                assert_eq!(items[2], Json::Null);
                assert_eq!(items[3], Json::Bool(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_are_errors() {
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json(r#"{"a":1} trailing"#).is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json(r#"{"k":1,"k":2}"#)
            .unwrap_err()
            .contains("duplicate key"));
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse_json(&too_deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn string_writer_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}é";
        let mut doc = String::from("{\"k\":");
        write_json_string(&mut doc, nasty);
        doc.push('}');
        let parsed = parse_json(&doc).expect("escaped string parses");
        assert_eq!(parsed.get("k"), Some(&Json::Str(nasty.to_string())));
    }
}
