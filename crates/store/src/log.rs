//! The append-only log: framing, recovery, and the [`Store`] handle.
//!
//! # On-disk format
//!
//! One frame per line, two frame kinds:
//!
//! ```text
//! h <len> <crc8hex> {"format":"1","gen":"<G>"}\n      generation header
//! r <len> <crc8hex> {"entry":...,"counts":[[...]]}\n  one record
//! ```
//!
//! `<len>` is the payload's byte length in decimal and `<crc8hex>` is
//! the CRC-32 of the payload as eight lowercase hex digits. Payloads
//! never contain a raw newline (the JSON writer escapes control
//! characters), so `\n` frames lines and the explicit length catches
//! frames whose newline was lost or swallowed.
//!
//! # Crash consistency
//!
//! Each append is staged in memory and written with a **single
//! `write_all` of a complete framed line** (then fsynced per
//! [`SyncPolicy`]). A crash therefore leaves at most one torn frame,
//! and only at the tail. Recovery exploits that asymmetry:
//!
//! - an **unterminated tail** (no final `\n`) is a torn append —
//!   truncated away, counted in [`Recovery::truncated_bytes`];
//! - a **complete line that fails** frame parse, CRC, or payload schema
//!   is mid-log damage (bit rot, fault injection) — quarantined: the
//!   line is skipped and counted, never served, and left on disk until
//!   [`Store::compact`] rewrites the log;
//! - a record filed under a **generation older than the log's newest
//!   header** is stale (a superseded epoch) — skipped and counted;
//! - duplicate keys resolve **last-writer-wins**, counting the losers
//!   as superseded.
//!
//! [`recover`] is a pure function of the byte sequence — no I/O — so
//! the property suites can fuzz it with arbitrary corruptions cheaply.
//! Its contract: *never panic, never return an unverified record.*

use crate::crc::crc32;
use crate::faults::{StoreFault, StoreFaultPlan};
use crate::json::{parse_json, Json};
use crate::record::{decode_payload, encode_payload, Record, StoreKey};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Store format version; bumped only on incompatible layout changes.
/// A header with any other format marks the whole log unreadable (its
/// records are still salvaged best-effort and rewritten under a fresh
/// header at open).
pub const FORMAT_VERSION: &str = "1";

/// Generation a freshly created log starts at. Kept above zero so an
/// injected `gen: 0` header is always stale relative to real data.
pub const FIRST_GENERATION: u64 = 1;

/// When the store flushes OS buffers to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append — each returned `Ok` is durable.
    /// The default: store writes amortize multi-second simulations, so
    /// a per-record fsync is noise.
    EveryAppend,
    /// Leave flushing to the OS. Crash-*consistent* (the single-write
    /// framing still bounds damage to a torn tail) but recent appends
    /// may be lost. For tests and bulk imports.
    Never,
}

/// What a scan of the log found. Produced by the pure [`recover`] and
/// surfaced by [`Store::open`] / [`scan`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovery {
    /// Verified live records: checksum and schema checked, newest
    /// generation only, last-writer-wins per key, in first-seen key
    /// order.
    pub records: Vec<Record>,
    /// Newest valid generation header seen (0 when none).
    pub generation: u64,
    /// Generation in force at the *end* of the log — what a blind
    /// append would be attributed to. Differs from [`Self::generation`]
    /// when the last header in the file is a stale one (the
    /// `StoreFault::StaleGeneration` shape); [`Store::open`] re-stamps
    /// the newest generation in that case so post-recovery appends are
    /// not born stale.
    pub tail_generation: u64,
    /// Whether any valid, current-format generation header was seen.
    /// `false` on a non-empty log means the header itself was damaged;
    /// [`Store::open`] responds by rewriting the salvaged records under
    /// a fresh header.
    pub header_valid: bool,
    /// Complete lines that failed frame parse, CRC, or payload schema —
    /// quarantined, never served.
    pub corrupt_skipped: u64,
    /// Verified records skipped because they belong to a superseded
    /// generation.
    pub stale_skipped: u64,
    /// Verified records superseded by a later write of the same key.
    pub superseded: u64,
    /// Bytes of torn tail (unterminated final frame) to truncate.
    pub truncated_bytes: u64,
    /// Byte length of the well-framed prefix (file length minus the
    /// torn tail). Quarantined lines are *inside* this prefix.
    pub valid_prefix: usize,
}

impl Recovery {
    /// Records dropped or shadowed by this scan (everything a
    /// compaction would remove, minus the torn tail it truncates).
    pub fn dropped(&self) -> u64 {
        self.corrupt_skipped + self.stale_skipped + self.superseded
    }

    /// Whether the scan found any damage at all.
    pub fn is_clean(&self) -> bool {
        self.corrupt_skipped == 0 && self.stale_skipped == 0 && self.truncated_bytes == 0
    }
}

/// Frame `payload` as one complete log line of the given kind
/// (`b'h'` or `b'r'`).
pub fn frame_line(kind: u8, payload: &str) -> Vec<u8> {
    let mut line = Vec::with_capacity(payload.len() + 16);
    line.push(kind);
    line.extend_from_slice(
        format!(" {} {:08x} ", payload.len(), crc32(payload.as_bytes())).as_bytes(),
    );
    line.extend_from_slice(payload.as_bytes());
    line.push(b'\n');
    line
}

fn header_payload(generation: u64) -> String {
    format!("{{\"format\":\"{FORMAT_VERSION}\",\"gen\":\"{generation}\"}}")
}

fn decode_header(payload: &str) -> Result<u64, String> {
    let doc = parse_json(payload)?;
    match doc.get("format") {
        Some(Json::Str(v)) if v == FORMAT_VERSION => {}
        _ => return Err("missing or unsupported \"format\"".into()),
    }
    match doc.get("gen") {
        Some(Json::Str(g)) => g
            .parse::<u64>()
            .map_err(|_| "\"gen\" is not a u64 decimal string".into()),
        _ => Err("missing or non-string \"gen\"".into()),
    }
}

enum Frame {
    Header(u64),
    Record(Record),
}

/// Parse one complete line (newline already stripped). Every deviation
/// is an `Err` — this runs on possibly bit-flipped bytes.
fn parse_frame(line: &[u8]) -> Result<Frame, String> {
    let text = std::str::from_utf8(line).map_err(|_| "frame is not UTF-8".to_string())?;
    let mut parts = text.splitn(4, ' ');
    let kind = parts.next().ok_or("empty frame")?;
    let len: usize = parts
        .next()
        .ok_or("missing length")?
        .parse()
        .map_err(|_| "bad length field".to_string())?;
    let crc_text = parts.next().ok_or("missing checksum")?;
    let payload = parts.next().ok_or("missing payload")?;
    if crc_text.len() != 8 {
        return Err("checksum is not 8 hex digits".into());
    }
    let stored_crc =
        u32::from_str_radix(crc_text, 16).map_err(|_| "checksum is not hex".to_string())?;
    if payload.len() != len {
        return Err(format!(
            "length mismatch: framed {len}, actual {}",
            payload.len()
        ));
    }
    if crc32(payload.as_bytes()) != stored_crc {
        return Err("checksum mismatch".into());
    }
    match kind {
        "h" => decode_header(payload).map(Frame::Header),
        "r" => decode_payload(payload).map(Frame::Record),
        _ => Err(format!("unknown frame kind {kind:?}")),
    }
}

/// Scan a byte sequence as a store log and return everything verifiable
/// from it. Pure (no I/O), total (any input, including adversarial,
/// yields a `Recovery` — never a panic), and deterministic.
pub fn recover(bytes: &[u8]) -> Recovery {
    let mut out = Recovery::default();
    // Pass 1: frame the bytes, attributing each verified record to the
    // generation header most recently seen above it.
    let mut staged: Vec<(u64, Record)> = Vec::new();
    let mut current_gen = 0u64;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            // Unterminated tail: the one torn append a crash can leave.
            out.truncated_bytes = (bytes.len() - pos) as u64;
            break;
        };
        let line = &bytes[pos..pos + nl];
        pos += nl + 1;
        match parse_frame(line) {
            Ok(Frame::Header(gen)) => {
                current_gen = gen;
                out.generation = out.generation.max(gen);
                out.header_valid = true;
            }
            Ok(Frame::Record(record)) => staged.push((current_gen, record)),
            Err(_) => out.corrupt_skipped += 1,
        }
    }
    out.valid_prefix = bytes.len() - out.truncated_bytes as usize;
    out.tail_generation = current_gen;
    // Pass 2: drop superseded generations, then dedup last-writer-wins.
    // (Two passes because "stale" is relative to the *newest* header,
    // which is only known once the whole log has been framed.)
    let mut index: HashMap<StoreKey, usize> = HashMap::new();
    for (gen, record) in staged {
        if gen < out.generation {
            out.stale_skipped += 1;
            continue;
        }
        match index.get(&record.key) {
            Some(&slot) => {
                out.superseded += 1;
                out.records[slot] = record;
            }
            None => {
                index.insert(record.key.clone(), out.records.len());
                out.records.push(record);
            }
        }
    }
    out
}

/// Read-only scan of a log file (no repair, no truncation) — what
/// `dc-store-check` runs. A missing file scans as an empty, clean log.
pub fn scan(path: &Path) -> std::io::Result<Recovery> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(recover(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Recovery::default()),
        Err(e) => Err(e),
    }
}

/// What a [`Store::compact`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Records carried into the new generation.
    pub live: u64,
    /// Frames left behind: corrupt, stale, and superseded records.
    pub dropped: u64,
    /// The generation the compacted log was rewritten under.
    pub generation: u64,
}

/// An open, appendable store log.
///
/// Opening recovers the existing file (truncating any torn tail so the
/// next append starts on a clean frame boundary, and rewriting the file
/// under a fresh header if the header itself was damaged), then holds
/// the file open in append mode. All writes go through [`Store::append`]
/// so the fault-injection hook sees every byte that reaches disk.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: File,
    generation: u64,
    sync: SyncPolicy,
    faults: StoreFaultPlan,
    append_idx: u64,
}

impl Store {
    /// Open (or create) the log at `path` with the default fsync-every-
    /// append policy and no fault injection. Returns the handle and
    /// what recovery found in the existing file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Store, Recovery)> {
        Store::open_with(path, SyncPolicy::EveryAppend, StoreFaultPlan::default())
    }

    /// [`Store::open`] with an explicit fsync policy and fault plan.
    pub fn open_with(
        path: impl Into<PathBuf>,
        sync: SyncPolicy,
        faults: StoreFaultPlan,
    ) -> std::io::Result<(Store, Recovery)> {
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let recovery = recover(&bytes);
        if !bytes.is_empty() && !recovery.header_valid {
            // The header is gone (corrupt or foreign format): salvage
            // whatever records verified and rewrite them one generation
            // past whatever the damaged log could still claim
            // (`recovery.generation` floors at FIRST_GENERATION - 1
            // when no header survived), so the log is self-describing
            // again.
            let generation = recovery.generation + 1;
            let file = rewrite(&path, generation, &recovery.records, sync)?;
            return Ok((
                Store {
                    path,
                    file,
                    generation,
                    sync,
                    faults,
                    append_idx: 0,
                },
                recovery,
            ));
        }
        if recovery.truncated_bytes > 0 {
            // Drop the torn tail in place; appending after it would
            // otherwise weld the next frame onto the partial one.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(recovery.valid_prefix as u64)?;
            if sync == SyncPolicy::EveryAppend {
                f.sync_data()?;
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let generation = if recovery.header_valid {
            if recovery.tail_generation != recovery.generation {
                // The last header in the file is a stale one; re-stamp
                // the newest generation so this handle's appends are
                // not attributed to the superseded epoch.
                let line = frame_line(b'h', &header_payload(recovery.generation));
                file.write_all(&line)?;
                if sync == SyncPolicy::EveryAppend {
                    file.sync_data()?;
                }
            }
            recovery.generation
        } else {
            // Empty or brand-new file: stamp the first header.
            let line = frame_line(b'h', &header_payload(FIRST_GENERATION));
            file.write_all(&line)?;
            if sync == SyncPolicy::EveryAppend {
                file.sync_data()?;
            }
            FIRST_GENERATION
        };
        Ok((
            Store {
                path,
                file,
                generation,
                sync,
                faults,
                append_idx: 0,
            },
            recovery,
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The generation this handle appends under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append one record as a single framed write.
    ///
    /// The fault plan is consulted per append (indexed from 0 for this
    /// handle's lifetime) and may tear, flip, duplicate, or stale-stamp
    /// the staged bytes *before* they reach the file — the recovery
    /// path must cope with whatever lands on disk, and the property
    /// tests drive exactly this hook.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        let mut line = frame_line(b'r', &encode_payload(record));
        match self.faults.fault_for(self.append_idx) {
            None => {}
            Some(StoreFault::TornWrite { at_byte }) => {
                // Clamp so a torn write always at least loses the
                // trailing newline — otherwise it would be a no-op.
                line.truncate(at_byte.min(line.len() - 1));
            }
            Some(StoreFault::BitFlip { at_byte, bit }) => {
                let idx = at_byte % line.len();
                line[idx] ^= 1 << (bit % 8);
            }
            Some(StoreFault::DuplicateRecord) => {
                let once = line.clone();
                line.extend_from_slice(&once);
            }
            Some(StoreFault::StaleGeneration) => {
                // Stamp an epoch-0 header above the record: recovery
                // attributes it (and any later appends this session) to
                // a superseded generation.
                let mut stamped = frame_line(b'h', &header_payload(0));
                stamped.extend_from_slice(&line);
                line = stamped;
            }
        }
        self.append_idx += 1;
        self.file.write_all(&line)?;
        if self.sync == SyncPolicy::EveryAppend {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Rewrite the log as `header + live records` under the next
    /// generation, dropping quarantined, stale, and superseded frames.
    /// The rewrite goes to a sibling temp file that is fsynced and then
    /// atomically renamed over the log, so a crash mid-compaction
    /// leaves either the old complete log or the new one — never a mix.
    pub fn compact(&mut self) -> std::io::Result<CompactStats> {
        let recovery = scan(&self.path)?;
        let generation = self.generation + 1;
        self.file = rewrite(&self.path, generation, &recovery.records, self.sync)?;
        self.generation = generation;
        Ok(CompactStats {
            live: recovery.records.len() as u64,
            dropped: recovery.dropped(),
            generation,
        })
    }
}

/// Write `header(generation) + records` to a temp sibling, fsync, and
/// rename over `path`. Returns the new file reopened in append mode.
fn rewrite(
    path: &Path,
    generation: u64,
    records: &[Record],
    sync: SyncPolicy,
) -> std::io::Result<File> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&frame_line(b'h', &header_payload(generation)))?;
        for record in records {
            f.write_all(&frame_line(b'r', &encode_payload(record)))?;
        }
        if sync == SyncPolicy::EveryAppend {
            f.sync_data()?;
        }
    }
    std::fs::rename(&tmp, path)?;
    if sync == SyncPolicy::EveryAppend {
        // Persist the rename itself (directory entry), best effort on
        // platforms where directories cannot be opened for sync.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            }) {
                let _ = dir.sync_data();
            }
        }
    }
    OpenOptions::new().append(true).open(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{counts_from_array, COUNTER_FIELDS};

    fn record(entry: &str, seed: u64, cycles: u64) -> Record {
        let mut a = [0u64; COUNTER_FIELDS];
        a[0] = cycles;
        a[COUNTER_FIELDS - 1] = seed ^ cycles;
        Record {
            key: StoreKey {
                entry: entry.to_string(),
                cfg_hash: 0xABCD_EF01_2345_6789,
                max_ops: 3_200_000,
                warmup_ops: 200_000,
                seed,
                corun: 1,
                sample: None,
            },
            counts: vec![counts_from_array(&a)],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dc-store-log-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("store.log")
    }

    #[test]
    fn fresh_open_append_reopen_round_trips() {
        let path = tmp("roundtrip");
        let (mut store, rec0) = Store::open(&path).expect("open");
        assert_eq!(rec0, Recovery::default(), "fresh log recovers empty");
        assert_eq!(store.generation(), FIRST_GENERATION);
        let a = record("Sort", 1, 100);
        let b = record("Grep", 2, 200);
        store.append(&a).expect("append a");
        store.append(&b).expect("append b");
        drop(store);
        let (_, rec1) = Store::open(&path).expect("reopen");
        assert_eq!(rec1.records, vec![a, b]);
        assert!(rec1.is_clean());
        assert!(rec1.header_valid);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable_again() {
        let path = tmp("torn");
        let (mut store, _) = Store::open(&path).expect("open");
        let a = record("Sort", 1, 100);
        store.append(&a).expect("append");
        drop(store);
        // Simulate a crash mid-append: a partial frame with no newline.
        let tear = b"r 999 deadbeef {\"entry\":\"to";
        let mut f = OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open raw");
        f.write_all(tear).expect("tear");
        drop(f);
        let before = std::fs::metadata(&path).expect("meta").len();
        let (mut store, rec) = Store::open(&path).expect("recover");
        assert_eq!(rec.records, vec![a.clone()]);
        assert_eq!(rec.truncated_bytes, tear.len() as u64);
        assert_eq!(rec.corrupt_skipped, 0, "a torn tail is not quarantine");
        let after = std::fs::metadata(&path).expect("meta").len();
        assert_eq!(
            after,
            before - tear.len() as u64,
            "tail physically truncated"
        );
        // The log is healthy again: appends land on a frame boundary.
        let b = record("Grep", 2, 200);
        store.append(&b).expect("append after repair");
        drop(store);
        let rec = scan(&path).expect("scan");
        assert_eq!(rec.records, vec![a, b]);
        assert!(rec.is_clean());
    }

    #[test]
    fn corrupt_midlog_line_is_quarantined_not_fatal() {
        let path = tmp("quarantine");
        let (mut store, _) = Store::open(&path).expect("open");
        let a = record("Sort", 1, 100);
        let b = record("Grep", 2, 200);
        store.append(&a).expect("append a");
        store.append(&b).expect("append b");
        drop(store);
        // Flip one payload bit in the middle of the file: the frame's
        // CRC no longer matches, so the record must be quarantined.
        let mut bytes = std::fs::read(&path).expect("read");
        let target = bytes.len() / 2;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let rec = recover(&bytes);
        assert_eq!(rec.corrupt_skipped, 1);
        assert_eq!(rec.records.len(), 1, "the undamaged record survives");
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn last_writer_wins_and_counts_superseded() {
        let path = tmp("lww");
        let (mut store, _) = Store::open(&path).expect("open");
        let old = record("Sort", 1, 100);
        let new = record("Sort", 1, 777);
        assert_eq!(old.key, new.key);
        store.append(&old).expect("append old");
        store.append(&new).expect("append new");
        drop(store);
        let rec = scan(&path).expect("scan");
        assert_eq!(rec.records, vec![new]);
        assert_eq!(rec.superseded, 1);
    }

    #[test]
    fn damaged_header_salvages_records_under_fresh_generation() {
        let path = tmp("header");
        let (mut store, _) = Store::open(&path).expect("open");
        let a = record("Sort", 1, 100);
        store.append(&a).expect("append");
        drop(store);
        // Destroy the header line (first line of the file).
        let bytes = std::fs::read(&path).expect("read");
        let nl = bytes.iter().position(|&b| b == b'\n').expect("newline");
        let mut mangled = b"h 2 00000000 {}".to_vec();
        mangled.extend_from_slice(&bytes[nl..]);
        std::fs::write(&path, &mangled).expect("write");
        let (store, rec) = Store::open(&path).expect("salvage");
        assert!(!rec.header_valid);
        assert_eq!(rec.records, vec![a.clone()]);
        assert_eq!(store.generation(), FIRST_GENERATION);
        drop(store);
        // The rewritten file is clean and self-describing again.
        let rec = scan(&path).expect("scan");
        assert!(rec.header_valid && rec.is_clean());
        assert_eq!(rec.records, vec![a]);
    }

    #[test]
    fn compaction_drops_quarantined_and_superseded_frames() {
        let path = tmp("compact");
        let (mut store, _) = Store::open(&path).expect("open");
        let old = record("Sort", 1, 100);
        let new = record("Sort", 1, 777);
        let other = record("Grep", 2, 200);
        store.append(&old).expect("append");
        store.append(&new).expect("append");
        store.append(&other).expect("append");
        drop(store);
        // Quarantine one frame by injecting a complete garbage line
        // between valid ones.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"r 10 00000000 notjson!!!\n");
        std::fs::write(&path, &bytes).expect("write");
        let (mut store, rec) = Store::open(&path).expect("open damaged");
        assert_eq!(rec.corrupt_skipped, 1);
        assert_eq!(rec.superseded, 1);
        let stats = store.compact().expect("compact");
        assert_eq!(stats.live, 2);
        assert_eq!(stats.dropped, 2, "corrupt + superseded frames dropped");
        assert_eq!(stats.generation, FIRST_GENERATION + 1);
        // Appends under the new generation still verify.
        let extra = record("Wc", 3, 300);
        store.append(&extra).expect("append post-compact");
        drop(store);
        let rec = scan(&path).expect("scan");
        assert!(rec.is_clean());
        assert_eq!(rec.generation, FIRST_GENERATION + 1);
        assert_eq!(rec.records, vec![new, other, extra]);
    }

    #[test]
    fn stale_generation_records_are_skipped() {
        let path = tmp("stale");
        let (mut store, _) = Store::open(&path).expect("open");
        let a = record("Sort", 1, 100);
        store.append(&a).expect("append");
        drop(store);
        // Append an epoch-0 header and a record under it: the record
        // verifies but belongs to a superseded generation.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&frame_line(b'h', &header_payload(0)));
        bytes.extend_from_slice(&frame_line(b'r', &encode_payload(&record("Grep", 2, 200))));
        let rec = recover(&bytes);
        assert_eq!(rec.stale_skipped, 1);
        assert_eq!(rec.records, vec![a.clone()]);
        assert_eq!(rec.generation, FIRST_GENERATION);
        assert_eq!(rec.tail_generation, 0, "log ends inside the stale epoch");
        // Reopening must re-stamp the newest generation: appends after
        // recovery are live, not silently born stale.
        std::fs::write(&path, &bytes).expect("write");
        let (mut store, _) = Store::open(&path).expect("reopen");
        let b = record("Wc", 3, 300);
        store.append(&b).expect("append post-stale");
        drop(store);
        let rec = scan(&path).expect("scan");
        assert_eq!(rec.records, vec![a, b]);
        assert_eq!(rec.tail_generation, FIRST_GENERATION);
    }

    #[test]
    fn recover_never_panics_on_small_adversarial_inputs() {
        for bytes in [
            &b""[..],
            b"\n",
            b"h\n",
            b"r \n",
            b"r 0 00000000 \n",
            b"q 1 00000000 x\n",
            b"r 1 zzzzzzzz x\n",
            b"r 18446744073709551616 00000000 x\n",
            b"\xff\xfe\xfd\n\x00\x01\n",
            b"r 3 00000000 abc",
        ] {
            let _ = recover(bytes);
        }
    }
}
