//! Hand-rolled CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib one).
//!
//! The store's corruption tolerance rests on this checksum: every
//! record line carries the CRC of its payload, and recovery trusts a
//! record only when the stored and recomputed values agree. The
//! workspace is offline-vendored, so the table-driven implementation
//! lives here rather than behind a dependency — 256 words computed at
//! compile time, one table lookup per byte.

/// Reflected polynomial for CRC-32/ISO-HDLC (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF` — the
/// standard parameterization, so values can be cross-checked against
/// `cksum -o3`, zlib, or any other IEEE CRC-32 implementation).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_value() {
        // The canonical CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
        // A single flipped bit anywhere changes the checksum.
        let base = b"the quick brown fox".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip byte {i} bit {bit}");
            }
        }
    }
}
