//! Record payloads: one `(measurement key, Vec<PerfCounts>)` pair per
//! log record, serialized as a single-line JSON object.
//!
//! Every `u64` travels as a **decimal string**, not a JSON number: the
//! workspace's hardened parser ([`crate::json`]) reads numbers as
//! `f64`, which silently rounds above 2^53 — fatal for `cfg_hash`,
//! seeds, and long-run cycle counters. Strings round-trip exactly.
//!
//! Counter blocks are serialized as fixed-order arrays (declaration
//! order of [`PerfCounts`]), not keyed objects: the payload is ~3×
//! smaller across a sweep grid and the order is compile-pinned by
//! exhaustive destructuring in [`counts_to_array`] — adding a counter
//! field without updating this module is a build error, not a silent
//! decode mismatch.

use crate::json::{parse_json, write_json_string, Json};
use dc_cpu::PerfCounts;

/// Identity of one persisted measurement — the on-disk mirror of
/// `dcbench::cache::CacheKey`. The store cannot name that type (the
/// core crate depends on this one), so the benchmark entry is keyed by
/// its stable registry name instead of the `BenchmarkId` enum.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Registry name of the benchmark entry (e.g. `"Sort"`).
    pub entry: String,
    /// `CpuConfig::stable_hash` of the simulated machine.
    pub cfg_hash: u64,
    /// Measured-window µops.
    pub max_ops: u64,
    /// Warm-up µops.
    pub warmup_ops: u64,
    /// Per-entry trace seed.
    pub seed: u64,
    /// Co-run width (1 = solo).
    pub corun: u32,
    /// SMARTS sampling plan as `(detail_ops, ffwd_ops)`, `None` for
    /// exact simulation. Serialized only when present, so records
    /// written before sampling existed decode as exact — and exact
    /// records keep their historical bytes.
    pub sample: Option<(u64, u64)>,
}

/// One recoverable unit: a key plus its per-core counter blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The measurement this record answers.
    pub key: StoreKey,
    /// One counter block per co-running core (solo = one element).
    pub counts: Vec<PerfCounts>,
}

/// Number of `u64` fields in [`PerfCounts`] (the serialized array
/// length). Compile-pinned against the struct by [`counts_to_array`].
pub const COUNTER_FIELDS: usize = 29;

/// Flatten one counter block into declaration-order values. The
/// exhaustive destructuring (no `..` rest pattern) is deliberate: a new
/// `PerfCounts` field breaks this build until the array — and therefore
/// the store format — is updated in the same change.
pub fn counts_to_array(c: &PerfCounts) -> [u64; COUNTER_FIELDS] {
    let PerfCounts {
        cycles,
        instructions,
        user_instructions,
        kernel_instructions,
        fetch_stall_cycles,
        rat_stall_cycles,
        rs_full_stall_cycles,
        rob_full_stall_cycles,
        load_buf_stall_cycles,
        store_buf_stall_cycles,
        l1i_accesses,
        l1i_misses,
        itlb_accesses,
        itlb_misses,
        itlb_walks,
        l1d_accesses,
        l1d_misses,
        dtlb_accesses,
        dtlb_misses,
        dtlb_walks,
        l2_accesses,
        l2_misses,
        l3_accesses,
        l3_misses,
        prefetches,
        branches,
        branch_mispredicts,
        loads,
        stores,
    } = *c;
    [
        cycles,
        instructions,
        user_instructions,
        kernel_instructions,
        fetch_stall_cycles,
        rat_stall_cycles,
        rs_full_stall_cycles,
        rob_full_stall_cycles,
        load_buf_stall_cycles,
        store_buf_stall_cycles,
        l1i_accesses,
        l1i_misses,
        itlb_accesses,
        itlb_misses,
        itlb_walks,
        l1d_accesses,
        l1d_misses,
        dtlb_accesses,
        dtlb_misses,
        dtlb_walks,
        l2_accesses,
        l2_misses,
        l3_accesses,
        l3_misses,
        prefetches,
        branches,
        branch_mispredicts,
        loads,
        stores,
    ]
}

/// Rebuild a counter block from its declaration-order array.
pub fn counts_from_array(a: &[u64; COUNTER_FIELDS]) -> PerfCounts {
    PerfCounts {
        cycles: a[0],
        instructions: a[1],
        user_instructions: a[2],
        kernel_instructions: a[3],
        fetch_stall_cycles: a[4],
        rat_stall_cycles: a[5],
        rs_full_stall_cycles: a[6],
        rob_full_stall_cycles: a[7],
        load_buf_stall_cycles: a[8],
        store_buf_stall_cycles: a[9],
        l1i_accesses: a[10],
        l1i_misses: a[11],
        itlb_accesses: a[12],
        itlb_misses: a[13],
        itlb_walks: a[14],
        l1d_accesses: a[15],
        l1d_misses: a[16],
        dtlb_accesses: a[17],
        dtlb_misses: a[18],
        dtlb_walks: a[19],
        l2_accesses: a[20],
        l2_misses: a[21],
        l3_accesses: a[22],
        l3_misses: a[23],
        prefetches: a[24],
        branches: a[25],
        branch_mispredicts: a[26],
        loads: a[27],
        stores: a[28],
    }
}

fn push_u64_str(out: &mut String, v: u64) {
    out.push('"');
    out.push_str(&v.to_string());
    out.push('"');
}

/// Serialize one record as a single-line JSON object (no trailing
/// newline; framing is the log layer's job). Deterministic: identical
/// records always produce identical bytes.
pub fn encode_payload(record: &Record) -> String {
    let mut out = String::with_capacity(128 + record.counts.len() * COUNTER_FIELDS * 8);
    out.push_str("{\"entry\":");
    write_json_string(&mut out, &record.key.entry);
    out.push_str(",\"cfg\":");
    push_u64_str(&mut out, record.key.cfg_hash);
    out.push_str(",\"max_ops\":");
    push_u64_str(&mut out, record.key.max_ops);
    out.push_str(",\"warmup_ops\":");
    push_u64_str(&mut out, record.key.warmup_ops);
    out.push_str(",\"seed\":");
    push_u64_str(&mut out, record.key.seed);
    out.push_str(",\"corun\":");
    push_u64_str(&mut out, u64::from(record.key.corun));
    if let Some((detail, ffwd)) = record.key.sample {
        out.push_str(",\"sample\":[");
        push_u64_str(&mut out, detail);
        out.push(',');
        push_u64_str(&mut out, ffwd);
        out.push(']');
    }
    out.push_str(",\"counts\":[");
    for (i, block) in record.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in counts_to_array(block).iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_u64_str(&mut out, *v);
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => s
            .parse::<u64>()
            .map_err(|_| format!("field \"{key}\" is not a u64 decimal string")),
        Some(_) => Err(format!("field \"{key}\" must be a decimal string")),
        None => Err(format!("missing field \"{key}\"")),
    }
}

/// Parse one payload line back into a [`Record`]. Any malformation —
/// bad JSON, wrong types, missing fields, wrong counter arity, empty
/// counts — is an `Err`, never a panic: this runs on post-crash,
/// possibly bit-flipped bytes.
pub fn decode_payload(payload: &str) -> Result<Record, String> {
    let doc = parse_json(payload)?;
    let entry = match doc.get("entry") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err("missing or non-string \"entry\"".into()),
    };
    let corun = get_u64(&doc, "corun")?;
    let corun = u32::try_from(corun).map_err(|_| "\"corun\" exceeds u32".to_string())?;
    if corun == 0 {
        return Err("\"corun\" must be at least 1".into());
    }
    // Absent before sampled simulation existed; such records are exact.
    let sample = match doc.get("sample") {
        None => None,
        Some(Json::Arr(pair)) if pair.len() == 2 => {
            let part = |v: &Json| match v {
                Json::Str(s) => s
                    .parse::<u64>()
                    .map_err(|_| "\"sample\" value is not a u64 decimal string".to_string()),
                _ => Err("\"sample\" values must be decimal strings".into()),
            };
            Some((part(&pair[0])?, part(&pair[1])?))
        }
        Some(_) => return Err("\"sample\" must be a two-element array".into()),
    };
    let key = StoreKey {
        entry,
        cfg_hash: get_u64(&doc, "cfg")?,
        max_ops: get_u64(&doc, "max_ops")?,
        warmup_ops: get_u64(&doc, "warmup_ops")?,
        seed: get_u64(&doc, "seed")?,
        corun,
        sample,
    };
    let blocks = match doc.get("counts") {
        Some(Json::Arr(blocks)) => blocks,
        _ => return Err("missing or non-array \"counts\"".into()),
    };
    if blocks.is_empty() {
        return Err("\"counts\" must hold at least one block".into());
    }
    let mut counts = Vec::with_capacity(blocks.len());
    for block in blocks {
        let values = match block {
            Json::Arr(values) => values,
            _ => return Err("counter block must be an array".into()),
        };
        if values.len() != COUNTER_FIELDS {
            return Err(format!(
                "counter block has {} fields, expected {COUNTER_FIELDS}",
                values.len()
            ));
        }
        let mut array = [0u64; COUNTER_FIELDS];
        for (slot, v) in array.iter_mut().zip(values) {
            *slot = match v {
                Json::Str(s) => s
                    .parse::<u64>()
                    .map_err(|_| "counter value is not a u64 decimal string".to_string())?,
                _ => return Err("counter value must be a decimal string".into()),
            };
        }
        counts.push(counts_from_array(&array));
    }
    Ok(Record { key, counts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        let mut a = [0u64; COUNTER_FIELDS];
        for (i, slot) in a.iter_mut().enumerate() {
            *slot = (i as u64 + 1) * 1_000_003;
        }
        Record {
            key: StoreKey {
                entry: "Sort".to_string(),
                cfg_hash: u64::MAX - 7,
                max_ops: 3_200_000,
                warmup_ops: 200_000,
                seed: 0xDEAD_BEEF_0BAD_F00D,
                corun: 4,
                sample: None,
            },
            counts: vec![counts_from_array(&a), PerfCounts::default()],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let r = sample();
        assert_eq!(decode_payload(&encode_payload(&r)).expect("decodes"), r);
    }

    #[test]
    fn sampled_records_round_trip_and_exact_ones_omit_the_field() {
        let mut r = sample();
        assert!(
            !encode_payload(&r).contains("sample"),
            "exact records keep their historical bytes"
        );
        r.key.sample = Some((25_000, 75_000));
        let line = encode_payload(&r);
        assert!(line.contains(r#""sample":["25000","75000"]"#));
        assert_eq!(decode_payload(&line).expect("decodes"), r);
    }

    #[test]
    fn records_without_a_sample_field_decode_as_exact() {
        // A pre-sampling record, byte for byte.
        let line = r#"{"entry":"Sort","cfg":"1","max_ops":"1","warmup_ops":"0","seed":"1","corun":"1","counts":[["1","2","3","4","5","6","7","8","9","10","11","12","13","14","15","16","17","18","19","20","21","22","23","24","25","26","27","28","29"]]}"#;
        let record = decode_payload(line).expect("old records stay readable");
        assert_eq!(record.key.sample, None);
    }

    #[test]
    fn u64s_above_f64_precision_survive() {
        // 2^53 + 1 is the first integer an f64 cannot represent; the
        // decimal-string encoding must carry it exactly.
        let mut r = sample();
        r.key.cfg_hash = (1 << 53) + 1;
        r.counts[0].cycles = u64::MAX;
        let back = decode_payload(&encode_payload(&r)).expect("decodes");
        assert_eq!(back.key.cfg_hash, (1 << 53) + 1);
        assert_eq!(back.counts[0].cycles, u64::MAX);
    }

    #[test]
    fn array_order_matches_declaration_order() {
        // Distinct per-slot values so any permutation would be caught.
        let mut a = [0u64; COUNTER_FIELDS];
        for (i, slot) in a.iter_mut().enumerate() {
            *slot = i as u64 + 1;
        }
        let c = counts_from_array(&a);
        assert_eq!(c.cycles, 1);
        assert_eq!(c.instructions, 2);
        assert_eq!(c.store_buf_stall_cycles, 10);
        assert_eq!(c.l2_accesses, 21);
        assert_eq!(c.stores, 29);
        assert_eq!(counts_to_array(&c), a);
    }

    #[test]
    fn malformed_payloads_are_errors() {
        for bad in [
            "",
            "{",
            "null",
            r#"{"entry":"Sort"}"#,
            // cfg as a bare number instead of a decimal string
            r#"{"entry":"Sort","cfg":1,"max_ops":"1","warmup_ops":"0","seed":"1","corun":"1","counts":[["1"]]}"#,
            // corun of zero
            r#"{"entry":"Sort","cfg":"1","max_ops":"1","warmup_ops":"0","seed":"1","corun":"0","counts":[["1"]]}"#,
            // empty counts
            r#"{"entry":"Sort","cfg":"1","max_ops":"1","warmup_ops":"0","seed":"1","corun":"1","counts":[]}"#,
            // wrong counter arity
            r#"{"entry":"Sort","cfg":"1","max_ops":"1","warmup_ops":"0","seed":"1","corun":"1","counts":[["1","2"]]}"#,
            // sample as a bare flag instead of a plan pair
            r#"{"entry":"Sort","cfg":"1","max_ops":"1","warmup_ops":"0","seed":"1","corun":"1","sample":true,"counts":[["1"]]}"#,
            // sample pair with a bare number
            r#"{"entry":"Sort","cfg":"1","max_ops":"1","warmup_ops":"0","seed":"1","corun":"1","sample":[25000,"75000"],"counts":[["1"]]}"#,
        ] {
            assert!(decode_payload(bad).is_err(), "accepted: {bad}");
        }
    }
}
