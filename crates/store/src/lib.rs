//! `dc-store`: a crash-consistent, corruption-tolerant persistent
//! result store for characterization measurements.
//!
//! The process-lifetime memo cache (`dcbench::cache`) makes repeated
//! figures cheap *within* one run; this crate makes them cheap *across*
//! runs. Counter blocks are durable records in an append-only,
//! checksummed, log-structured file — a warm second invocation of the
//! full sweep grid replays the log instead of re-simulating it
//! (`DCBENCH_STORE=...`), which is the storage substrate the ROADMAP
//! names for larger grids and the future `dc-server`.
//!
//! Durability without trust would be worse than no store at all — a
//! silently served torn or bit-flipped record corrupts every downstream
//! exhibit. So robustness is the design center:
//!
//! - every record line carries a length prefix and a hand-rolled
//!   CRC-32 ([`crc`]); recovery serves a record only after checksum
//!   *and* schema verification ([`record`]);
//! - appends are staged and written as a single `write_all` + fsync,
//!   bounding crash damage to one torn tail, which recovery truncates;
//!   complete-but-corrupt mid-log lines are quarantined, counted, and
//!   dropped by [`Store::compact`] ([`log`]);
//! - the write path carries a seeded fault-injection hook
//!   ([`faults`]) — torn writes, bit flips, duplicates, stale
//!   generations — so the recovery guarantees are property-tested
//!   against deterministic damage, not assumed;
//! - [`recover`] is pure and total: any byte sequence, including
//!   adversarial ones, yields a `Recovery` without panicking.
//!
//! The offline `dc-store-check` bin audits a log file and exercises
//! the same code paths out-of-process.

pub mod crc;
pub mod faults;
pub mod json;
pub mod log;
pub mod record;

pub use crc::crc32;
pub use faults::{StoreChaosSpec, StoreFault, StoreFaultPlan};
pub use log::{
    frame_line, recover, scan, CompactStats, Recovery, Store, SyncPolicy, FIRST_GENERATION,
    FORMAT_VERSION,
};
pub use record::{
    counts_from_array, counts_to_array, decode_payload, encode_payload, Record, StoreKey,
    COUNTER_FIELDS,
};
