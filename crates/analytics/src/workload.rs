//! The workload registry: uniform access to all eleven workloads with
//! the paper's Table I/II metadata.

use crate::{
    fuzzy_kmeans, grep, hive, hmm, ibcf, kmeans, naive_bayes, pagerank, sort, svm, wordcount,
};
use dc_datagen::{graph, ratings, tables, text, vectors, Scale};
use dc_mapreduce::engine::{JobConfig, JobError, JobStats};
use dc_mapreduce::faults::FaultPlan;
use std::fmt;

/// The eleven data-analysis workloads (Table I order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 1 — Sort (Hadoop example).
    Sort,
    /// 2 — WordCount (Hadoop example).
    WordCount,
    /// 3 — Grep (Hadoop example).
    Grep,
    /// 4 — Naive Bayes (Mahout).
    NaiveBayes,
    /// 5 — SVM (authors' implementation).
    Svm,
    /// 6 — K-means (Mahout).
    KMeans,
    /// 7 — Fuzzy K-means (Mahout).
    FuzzyKMeans,
    /// 8 — Item-based collaborative filtering (Mahout).
    Ibcf,
    /// 9 — HMM segmentation (authors' implementation).
    Hmm,
    /// 10 — PageRank (Mahout).
    PageRank,
    /// 11 — Hive-bench (HIVE-396).
    HiveBench,
}

/// Result of running one workload for real on the local engine.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Which workload ran.
    pub workload: Workload,
    /// Measured engine statistics (accumulated over iterations).
    pub stats: JobStats,
    /// Number of output records/results produced (sanity signal).
    pub outputs: usize,
}

impl Workload {
    /// All eleven, in Table I order.
    pub fn all() -> &'static [Workload] {
        use Workload::*;
        &[
            Sort,
            WordCount,
            Grep,
            NaiveBayes,
            Svm,
            KMeans,
            FuzzyKMeans,
            Ibcf,
            Hmm,
            PageRank,
            HiveBench,
        ]
    }

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Sort => "Sort",
            Workload::WordCount => "WordCount",
            Workload::Grep => "Grep",
            Workload::NaiveBayes => "Naive Bayes",
            Workload::Svm => "SVM",
            Workload::KMeans => "K-means",
            Workload::FuzzyKMeans => "Fuzzy K-means",
            Workload::Ibcf => "IBCF",
            Workload::Hmm => "HMM",
            Workload::PageRank => "PageRank",
            Workload::HiveBench => "Hive-bench",
        }
    }

    /// Paper input size in GB (Table I).
    pub fn paper_input_gb(&self) -> u64 {
        match self {
            Workload::Sort => 150,
            Workload::WordCount => 154,
            Workload::Grep => 154,
            Workload::NaiveBayes => 147,
            Workload::Svm => 148,
            Workload::KMeans => 150,
            Workload::FuzzyKMeans => 150,
            Workload::Ibcf => 147,
            Workload::Hmm => 147,
            Workload::PageRank => 187,
            Workload::HiveBench => 156,
        }
    }

    /// Paper retired-instruction count in billions (Table I).
    pub fn paper_giga_instructions(&self) -> u64 {
        match self {
            Workload::Sort => 4_578,
            Workload::WordCount => 3_533,
            Workload::Grep => 1_499,
            Workload::NaiveBayes => 68_131,
            Workload::Svm => 2_051,
            Workload::KMeans => 3_227,
            Workload::FuzzyKMeans => 15_470,
            Workload::Ibcf => 32_340,
            Workload::Hmm => 1_841,
            Workload::PageRank => 18_470,
            Workload::HiveBench => 3_659,
        }
    }

    /// Input-data description (Table I).
    pub fn input_kind(&self) -> &'static str {
        match self {
            Workload::Sort => "documents",
            Workload::WordCount | Workload::Grep => "documents",
            Workload::NaiveBayes => "text",
            Workload::Svm | Workload::Hmm => "html file",
            Workload::KMeans | Workload::FuzzyKMeans => "vector",
            Workload::Ibcf => "ratings data",
            Workload::PageRank => "web page",
            Workload::HiveBench => "DBtable",
        }
    }

    /// Upstream implementation source (Table I).
    pub fn paper_source(&self) -> &'static str {
        match self {
            Workload::Sort | Workload::WordCount | Workload::Grep => "Hadoop example",
            Workload::NaiveBayes
            | Workload::KMeans
            | Workload::FuzzyKMeans
            | Workload::Ibcf
            | Workload::PageRank => "mahout",
            Workload::Svm | Workload::Hmm => "our implementation",
            Workload::HiveBench => "Hivebench",
        }
    }

    /// Application scenarios per domain (Table II).
    pub fn scenarios(&self) -> &'static [(&'static str, &'static str)] {
        match self {
            Workload::Grep => &[
                ("search engine", "Log analysis"),
                ("social network", "Web information extraction"),
                ("electronic commerce", "Fuzzy search"),
            ],
            Workload::NaiveBayes => &[
                ("social network", "Spam recognition"),
                ("electronic commerce", "Web page classification"),
            ],
            Workload::Svm => &[
                ("social network", "Image Processing"),
                ("electronic commerce", "Data Mining / Text Categorization"),
            ],
            Workload::PageRank => &[("search engine", "Compute the page rank")],
            Workload::FuzzyKMeans => &[
                ("search engine", "Image processing"),
                ("social network", "High-resolution landform"),
            ],
            Workload::KMeans => &[
                ("electronic commerce", "classification"),
                ("social network", "Speech recognition"),
            ],
            Workload::Hmm => &[
                ("search engine", "Word Segmentation"),
                ("search engine", "Handwriting recognition"),
            ],
            Workload::WordCount => &[
                ("search engine", "Word frequency count"),
                ("social network", "Calculating the TF-IDF value"),
                ("electronic commerce", "Obtaining the user operations count"),
            ],
            Workload::Sort => &[
                ("electronic commerce", "Document sorting"),
                ("search engine", "Pages sorting"),
            ],
            Workload::Ibcf => &[
                ("electronic commerce", "Recommend goods"),
                ("social network", "Recommend friends"),
                ("search engine", "Recommend key words"),
            ],
            Workload::HiveBench => &[
                ("search engine", "Data warehouse"),
                ("social network", "Data warehouse"),
                ("electronic commerce", "Data warehouse"),
            ],
        }
    }

    /// Iterations used when scaling to cluster job models (iterative
    /// algorithms chain several MapReduce jobs).
    pub fn typical_iterations(&self) -> u32 {
        match self {
            Workload::KMeans => 5,
            Workload::FuzzyKMeans => 5,
            Workload::PageRank => 8,
            Workload::Svm => 3,
            _ => 1,
        }
    }

    /// Execute the workload **for real** on the local MapReduce engine at
    /// the given input scale, with a fixed seed.
    ///
    /// # Errors
    /// Fails when a task exhausts its attempts (see [`JobError`]); this
    /// cannot happen without injected faults, but the signature is fallible
    /// so drivers handle recovery uniformly.
    pub fn run(&self, scale: Scale, cfg: &JobConfig) -> Result<WorkloadRun, JobError> {
        self.run_with_faults(scale, cfg, None)
    }

    /// Like [`Workload::run`], but executing under a seeded [`FaultPlan`]:
    /// the chosen task attempts panic, stall, or fail with transient I/O
    /// errors, and the engine's Hadoop-style recovery (retries, backoff,
    /// speculation) must still deliver the exact fault-free output.
    ///
    /// The plan applies to the *map/reduce phases of each constituent
    /// job* — iterative workloads (K-means, PageRank, …) re-apply it on
    /// every iteration, which mirrors a flaky node harassing a whole job
    /// chain.
    ///
    /// # Errors
    /// Fails when a task exhausts its attempts (see [`JobError`]), e.g.
    /// with a plan that panics `max_attempts` times in the same task.
    pub fn run_with_faults(
        &self,
        scale: Scale,
        cfg: &JobConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<WorkloadRun, JobError> {
        let seed = 0xDCBE ^ (*self as u64);
        let mut cfg = cfg.clone();
        cfg.faults = faults.cloned();
        let cfg = &cfg;
        let (outputs, stats) = match self {
            Workload::Sort => {
                let docs = text::documents(seed, scale, 12);
                let (out, stats) = sort::run(docs, cfg)?;
                (out.len(), stats)
            }
            Workload::WordCount => {
                let docs = text::documents(seed, scale, 80);
                let (out, stats) = wordcount::run(docs, cfg)?;
                (out.len(), stats)
            }
            Workload::Grep => {
                let docs = text::documents(seed, scale, 80);
                let (out, stats) = grep::run(docs, "w012..", cfg)?;
                (out.len(), stats)
            }
            Workload::NaiveBayes => {
                let docs = text::labeled_documents(seed, scale, 4, 60);
                let (model, stats) = naive_bayes::train(docs, 4, cfg)?;
                (model.log_prior.len(), stats)
            }
            Workload::Svm => {
                let bytes = scale.bytes / 4; // vectors are denser than text
                let (data, _) = vectors::linearly_separable(seed, Scale::bytes(bytes), 16, 0.05);
                let (model, stats) = svm::train(&data, 16, 0.01, 3, cfg)?;
                (model.w.len(), stats)
            }
            Workload::KMeans => {
                let set = vectors::gaussian_mixture(seed, scale, 8, 16);
                let result = kmeans::run(&set.points, 8, 5, 1e-3, cfg)?;
                (result.centers.len(), result.stats)
            }
            Workload::FuzzyKMeans => {
                let small = Scale::bytes(scale.bytes / 2); // k× shuffle blow-up
                let set = vectors::gaussian_mixture(seed, small, 8, 16);
                let result = fuzzy_kmeans::run(&set.points, 8, 2.0, 5, 1e-3, cfg)?;
                (result.centers.len(), result.stats)
            }
            Workload::Ibcf => {
                let set = ratings::ratings(seed, scale, 8);
                let (model, stats) = ibcf::train(&set, cfg)?;
                (model.sim.len(), stats)
            }
            Workload::Hmm => {
                let docs = text::documents(seed, scale, 40);
                let (model, stats) = hmm::train(docs, cfg)?;
                (model.emit.len(), stats)
            }
            Workload::PageRank => {
                let g = graph::web_graph(seed, scale, 12);
                let result = pagerank::run(&g, 0.85, 8, 1e-8, cfg)?;
                (result.ranks.len(), result.stats)
            }
            Workload::HiveBench => {
                let w = tables::warehouse(seed, scale);
                let (n, stats) = hive::run_suite(&w, cfg)?;
                (n, stats)
            }
        };
        Ok(WorkloadRun {
            workload: *self,
            stats,
            outputs,
        })
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eleven_workloads() {
        assert_eq!(Workload::all().len(), 11);
    }

    #[test]
    fn table_i_metadata_matches_paper() {
        assert_eq!(Workload::Sort.paper_input_gb(), 150);
        assert_eq!(Workload::PageRank.paper_input_gb(), 187);
        assert_eq!(Workload::NaiveBayes.paper_giga_instructions(), 68_131);
        assert_eq!(Workload::Grep.paper_giga_instructions(), 1_499);
        assert_eq!(Workload::Svm.paper_source(), "our implementation");
        assert_eq!(Workload::KMeans.paper_source(), "mahout");
    }

    #[test]
    fn every_workload_has_scenarios() {
        for w in Workload::all() {
            assert!(!w.scenarios().is_empty(), "{w} lacks Table II scenarios");
            assert!(!w.input_kind().is_empty());
        }
    }

    #[test]
    fn every_workload_runs_at_tiny_scale() {
        let cfg = JobConfig::default();
        for w in Workload::all() {
            let run = w.run(Scale::bytes(24 << 10), &cfg).expect("fault-free run");
            assert!(run.stats.map_input_records > 0, "{w}: no input consumed");
            assert!(run.outputs > 0, "{w}: no outputs produced");
            assert!(run.stats.total_ms() < 120_000, "{w}: unreasonably slow");
        }
    }

    #[test]
    fn every_workload_survives_first_attempt_faults() {
        use dc_mapreduce::faults::{Fault, FaultPlan, TaskKind};
        let cfg = JobConfig::default();
        let scale = Scale::bytes(24 << 10);
        // Panic the first attempt of one map and one reduce task of every
        // constituent job; recovery must reproduce the clean data counters.
        let plan = FaultPlan::new(7)
            .with_fault(TaskKind::Map, 0, 0, Fault::Panic)
            .with_fault(TaskKind::Reduce, 0, 0, Fault::IoError);
        for w in Workload::all() {
            let clean = w.run(scale, &cfg).expect("fault-free run");
            let faulted = w
                .run_with_faults(scale, &cfg, Some(&plan))
                .unwrap_or_else(|e| panic!("{w} failed under faults: {e}"));
            assert_eq!(faulted.outputs, clean.outputs, "{w}: outputs differ");
            assert_eq!(
                faulted.stats.data_counters(),
                clean.stats.data_counters(),
                "{w}: dataflow counters differ under faults"
            );
            assert!(
                faulted.stats.failed_attempts > 0,
                "{w}: plan injected no faults"
            );
        }
    }

    #[test]
    fn names_are_figure_labels() {
        let names: Vec<&str> = Workload::all().iter().map(|w| w.name()).collect();
        assert!(names.contains(&"Naive Bayes"));
        assert!(names.contains(&"Fuzzy K-means"));
        assert!(names.contains(&"Hive-bench"));
    }
}
