//! # dc-analytics — the eleven data-analysis workloads
//!
//! From-scratch Rust implementations of every workload the paper
//! characterizes (Table I), each with a pure algorithmic kernel and a
//! MapReduce job running on the real `dc-mapreduce` engine:
//!
//! | # | Module | Paper source | Input |
//! |---|--------|--------------|-------|
//! | 1 | [`sort`] | Hadoop example | 150 GB documents |
//! | 2 | [`wordcount`] | Hadoop example | 154 GB documents |
//! | 3 | [`grep`] | Hadoop example | 154 GB documents |
//! | 4 | [`naive_bayes`] | Mahout | 147 GB text |
//! | 5 | [`svm`] | authors' impl. | 148 GB html |
//! | 6 | [`kmeans`] | Mahout | 150 GB vectors |
//! | 7 | [`fuzzy_kmeans`] | Mahout | 150 GB vectors |
//! | 8 | [`ibcf`] | Mahout | 147 GB ratings |
//! | 9 | [`hmm`] | authors' impl. | 147 GB html |
//! | 10 | [`pagerank`] | Mahout | 187 GB web pages |
//! | 11 | [`hive`] | Hive-bench | 156 GB DB tables |
//!
//! [`workload`] provides the uniform registry ([`workload::Workload`])
//! used by the characterization harness: Table II scenario metadata,
//! Table I input sizes, and fallible `run` / `run_with_faults` entry
//! points that execute the real job at a chosen scale — optionally under
//! a seeded, deterministic fault-injection plan — and return measured
//! engine statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzzy_kmeans;
pub mod grep;
pub mod hive;
pub mod hmm;
pub mod ibcf;
pub mod kmeans;
pub mod naive_bayes;
pub mod pagerank;
pub mod sort;
pub mod svm;
pub mod wordcount;
pub mod workload;

pub use workload::{Workload, WorkloadRun};
