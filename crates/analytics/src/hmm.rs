//! HMM word segmentation (authors' implementation, Table I row 9).
//!
//! The paper implements segmentation with a Hidden Markov Model — "very
//! important for web search, especially for a language like Chinese".
//! We implement the standard 4-state BMES tagger (Begin / Middle / End /
//! Single) over character sequences: supervised training counts
//! transition and emission frequencies from segmented text (a MapReduce
//! job), and Viterbi decoding recovers word boundaries from unsegmented
//! text.

use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};
use std::collections::HashMap;

/// BMES tag states.
pub const STATES: usize = 4;
/// Begin of a multi-char word.
pub const B: usize = 0;
/// Middle of a multi-char word.
pub const M: usize = 1;
/// End of a multi-char word.
pub const E: usize = 2;
/// Single-char word.
pub const S: usize = 3;

/// A trained segmentation model (log-space).
#[derive(Debug, Clone)]
pub struct HmmModel {
    /// Initial state log-probabilities.
    pub start: [f64; STATES],
    /// Transition log-probabilities.
    pub trans: [[f64; STATES]; STATES],
    /// Emission log-probabilities per state.
    pub emit: Vec<HashMap<char, f64>>,
    /// Unseen-emission floor per state.
    pub emit_floor: [f64; STATES],
}

/// Tag a segmented sentence (words) with its BMES state sequence.
pub fn tags_of(words: &[&str]) -> Vec<(char, usize)> {
    let mut out = Vec::new();
    for w in words {
        let chars: Vec<char> = w.chars().collect();
        match chars.len() {
            0 => {}
            1 => out.push((chars[0], S)),
            n => {
                out.push((chars[0], B));
                for &c in &chars[1..n - 1] {
                    out.push((c, M));
                }
                out.push((chars[n - 1], E));
            }
        }
    }
    out
}

/// Train from pre-segmented sentences (each a list of words separated by
/// spaces) with a MapReduce counting job.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn train(sentences: Vec<String>, cfg: &JobConfig) -> Result<(HmmModel, JobStats), JobError> {
    let (counts, stats) = run_job(
        sentences,
        cfg,
        |sentence: String, emit: &mut dyn FnMut(String, u64)| {
            let words: Vec<&str> = sentence.split_whitespace().collect();
            let tagged = tags_of(&words);
            for (i, &(c, s)) in tagged.iter().enumerate() {
                emit(format!("E{s}:{c}"), 1);
                if i == 0 {
                    emit(format!("P{s}"), 1);
                } else {
                    emit(format!("T{}:{}", tagged[i - 1].1, s), 1);
                }
            }
        },
        Some(&|_k: &String, vs: &[u64]| vec![vs.iter().sum::<u64>()]),
        |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
    )?;

    let mut start_counts = [1u64; STATES];
    let mut trans_counts = [[1u64; STATES]; STATES];
    let mut emit_counts: Vec<HashMap<char, u64>> = vec![HashMap::new(); STATES];
    for (key, n) in counts {
        let (kind, rest) = key.split_at(1);
        match kind {
            "P" => {
                let s: usize = rest.parse().expect("state");
                start_counts[s] += n;
            }
            "T" => {
                let (a, b) = rest.split_once(':').expect("from:to");
                trans_counts[a.parse::<usize>().expect("state")]
                    [b.parse::<usize>().expect("state")] += n;
            }
            "E" => {
                let (s, c) = rest.split_once(':').expect("state:char");
                let s: usize = s.parse().expect("state");
                let c = c.chars().next().expect("char");
                *emit_counts[s].entry(c).or_insert(0) += n;
            }
            _ => {}
        }
    }

    let start_total: u64 = start_counts.iter().sum();
    let mut start = [0.0; STATES];
    for s in 0..STATES {
        start[s] = (start_counts[s] as f64 / start_total as f64).ln();
    }
    let mut trans = [[0.0; STATES]; STATES];
    for a in 0..STATES {
        let row: u64 = trans_counts[a].iter().sum();
        for b in 0..STATES {
            trans[a][b] = (trans_counts[a][b] as f64 / row as f64).ln();
        }
    }
    let mut emit = Vec::with_capacity(STATES);
    let mut emit_floor = [0.0; STATES];
    for s in 0..STATES {
        let total: u64 = emit_counts[s].values().sum::<u64>() + 1;
        let vocab = emit_counts[s].len().max(1) as f64;
        emit.push(
            emit_counts[s]
                .iter()
                .map(|(&c, &n)| (c, ((n as f64 + 1.0) / (total as f64 + vocab)).ln()))
                .collect(),
        );
        emit_floor[s] = (1.0 / (total as f64 + vocab)).ln();
    }
    Ok((
        HmmModel {
            start,
            trans,
            emit,
            emit_floor,
        },
        stats,
    ))
}

impl HmmModel {
    fn emit_lp(&self, s: usize, c: char) -> f64 {
        self.emit[s].get(&c).copied().unwrap_or(self.emit_floor[s])
    }

    /// Viterbi decode: most likely BMES tag sequence for raw text.
    pub fn viterbi(&self, text: &str) -> Vec<usize> {
        let chars: Vec<char> = text.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        let n = chars.len();
        let mut dp = vec![[f64::NEG_INFINITY; STATES]; n];
        let mut back = vec![[0usize; STATES]; n];
        for (s, cell) in dp[0].iter_mut().enumerate() {
            *cell = self.start[s] + self.emit_lp(s, chars[0]);
        }
        for i in 1..n {
            for s in 0..STATES {
                let e = self.emit_lp(s, chars[i]);
                for p in 0..STATES {
                    let score = dp[i - 1][p] + self.trans[p][s] + e;
                    if score > dp[i][s] {
                        dp[i][s] = score;
                        back[i][s] = p;
                    }
                }
            }
        }
        let mut best = (0, f64::NEG_INFINITY);
        for (s, &score) in dp[n - 1].iter().enumerate() {
            if score > best.1 {
                best = (s, score);
            }
        }
        let mut tags = vec![0usize; n];
        tags[n - 1] = best.0;
        for i in (1..n).rev() {
            tags[i - 1] = back[i][tags[i]];
        }
        tags
    }

    /// Segment raw text into words using the decoded tags.
    pub fn segment(&self, text: &str) -> Vec<String> {
        let chars: Vec<char> = text.chars().collect();
        let tags = self.viterbi(text);
        let mut words = Vec::new();
        let mut current = String::new();
        for (c, t) in chars.into_iter().zip(tags) {
            current.push(c);
            if t == E || t == S {
                words.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            words.push(current);
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagging_follows_bmes() {
        let tagged = tags_of(&["ab", "c", "def"]);
        let states: Vec<usize> = tagged.iter().map(|&(_, s)| s).collect();
        assert_eq!(states, vec![B, E, S, B, M, E]);
    }

    fn training_corpus() -> Vec<String> {
        // A tiny artificial language: words "xy", "z", "pqr" repeated in
        // varying orders; segmentation is learnable from char identity.
        let mut corpus = Vec::new();
        for i in 0..120 {
            let s = match i % 4 {
                0 => "xy z pqr",
                1 => "z xy xy",
                2 => "pqr xy z z",
                _ => "xy pqr",
            };
            corpus.push(s.to_string());
        }
        corpus
    }

    #[test]
    fn learns_to_segment_artificial_language() {
        let (model, stats) =
            train(training_corpus(), &JobConfig::default()).expect("fault-free job");
        assert!(stats.map_output_records > 0);
        let words = model.segment("xyzpqr");
        assert_eq!(words, vec!["xy", "z", "pqr"]);
        let words2 = model.segment("zxy");
        assert_eq!(words2, vec!["z", "xy"]);
    }

    #[test]
    fn viterbi_emits_one_tag_per_char() {
        let (model, _) = train(training_corpus(), &JobConfig::default()).expect("fault-free job");
        assert_eq!(model.viterbi("xyzxy").len(), 5);
        assert!(model.viterbi("").is_empty());
    }

    #[test]
    fn segmentation_is_lossless() {
        let (model, _) = train(training_corpus(), &JobConfig::default()).expect("fault-free job");
        let text = "xyzpqrzz";
        let rejoined: String = model.segment(text).concat();
        assert_eq!(rejoined, text, "segmentation must preserve the text");
    }
}
