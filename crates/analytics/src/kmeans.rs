//! K-means clustering (Mahout workload, Table I row 6).
//!
//! Lloyd's algorithm as iterated MapReduce jobs, exactly as Mahout runs
//! it: map assigns each point to its nearest center and emits partial
//! sums, a combiner pre-aggregates, reduce computes new centers, the
//! driver iterates until movement falls below a tolerance.

use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest center.
pub fn nearest(point: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = (0, f64::INFINITY);
    for (i, c) in centers.iter().enumerate() {
        let d = dist2(point, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best.0
}

/// Result of a K-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Final centers.
    pub centers: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: u32,
    /// Accumulated engine statistics over all iterations.
    pub stats: JobStats,
}

/// One Lloyd iteration as a MapReduce job; returns the new centers.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn iterate(
    points: &[Vec<f64>],
    centers: &[Vec<f64>],
    cfg: &JobConfig,
) -> Result<(Vec<Vec<f64>>, JobStats), JobError> {
    let centers_owned: Vec<Vec<f64>> = centers.to_vec();
    let k = centers.len();
    let (sums, stats) = run_job(
        points.to_vec(),
        cfg,
        move |p: Vec<f64>, emit: &mut dyn FnMut(u32, (Vec<f64>, u64))| {
            let c = nearest(&p, &centers_owned) as u32;
            emit(c, (p, 1));
        },
        Some(&|_k: &u32, vs: &[(Vec<f64>, u64)]| vec![partial_sum(vs)]),
        |k: &u32, vs: &[(Vec<f64>, u64)]| {
            let (sum, n) = partial_sum(vs);
            let center: Vec<f64> = sum.iter().map(|s| s / n.max(1) as f64).collect();
            vec![(*k, center)]
        },
    )?;
    let mut new_centers: Vec<Vec<f64>> = centers.to_vec();
    for (c, center) in sums {
        if (c as usize) < k {
            new_centers[c as usize] = center;
        }
    }
    Ok((new_centers, stats))
}

fn partial_sum(vs: &[(Vec<f64>, u64)]) -> (Vec<f64>, u64) {
    let dim = vs.first().map_or(0, |(p, _)| p.len());
    let mut sum = vec![0.0; dim];
    let mut n = 0;
    for (p, c) in vs {
        for (s, x) in sum.iter_mut().zip(p) {
            *s += x;
        }
        n += c;
    }
    (sum, n)
}

/// Run K-means to convergence (center movement < `tol`) or `max_iters`.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn run(
    points: &[Vec<f64>],
    k: usize,
    max_iters: u32,
    tol: f64,
    cfg: &JobConfig,
) -> Result<KmeansResult, JobError> {
    assert!(k > 0 && !points.is_empty(), "need points and k > 0");
    // Deterministic init: spread over the input.
    let mut centers: Vec<Vec<f64>> = (0..k)
        .map(|i| points[i * points.len() / k].clone())
        .collect();
    let mut stats = JobStats::default();
    let mut iterations = 0;
    for _ in 0..max_iters {
        let (next, s) = iterate(points, &centers, cfg)?;
        stats.accumulate(&s);
        iterations += 1;
        let moved: f64 = centers
            .iter()
            .zip(&next)
            .map(|(a, b)| dist2(a, b))
            .sum::<f64>()
            .sqrt();
        centers = next;
        if moved < tol {
            break;
        }
    }
    Ok(KmeansResult {
        centers,
        iterations,
        stats,
    })
}

/// Within-cluster sum of squares (clustering quality).
pub fn wcss(points: &[Vec<f64>], centers: &[Vec<f64>]) -> f64 {
    points
        .iter()
        .map(|p| dist2(p, &centers[nearest(p, centers)]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{vectors::gaussian_mixture, Scale};

    #[test]
    fn distance_and_nearest() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert_eq!(nearest(&[1.0, 1.0], &centers), 0);
        assert_eq!(nearest(&[9.0, 9.0], &centers), 1);
    }

    #[test]
    fn recovers_gaussian_centers() {
        let set = gaussian_mixture(21, Scale::bytes(128 << 10), 3, 4);
        let result = run(&set.points, 3, 20, 1e-3, &JobConfig::default()).expect("fault-free job");
        // Each true center should have a recovered center nearby.
        for truth in &set.true_centers {
            let best = result
                .centers
                .iter()
                .map(|c| dist2(c, truth))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 4.0, "no recovered center near {truth:?} (d²={best})");
        }
        assert!(result.iterations >= 2);
    }

    #[test]
    fn wcss_decreases_over_iterations() {
        let set = gaussian_mixture(22, Scale::bytes(64 << 10), 4, 3);
        let init: Vec<Vec<f64>> = (0..4)
            .map(|i| set.points[i * set.points.len() / 4].clone())
            .collect();
        let before = wcss(&set.points, &init);
        let (after_centers, _) =
            iterate(&set.points, &init, &JobConfig::default()).expect("fault-free job");
        let (after2, _) =
            iterate(&set.points, &after_centers, &JobConfig::default()).expect("fault-free job");
        let after = wcss(&set.points, &after2);
        assert!(after <= before, "Lloyd iterations never increase WCSS");
    }

    #[test]
    fn converges_and_stops_early() {
        let set = gaussian_mixture(23, Scale::bytes(32 << 10), 2, 3);
        let result = run(&set.points, 2, 50, 1e-6, &JobConfig::default()).expect("fault-free job");
        assert!(result.iterations < 50, "should converge before the cap");
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let _ = run(&[vec![1.0]], 0, 1, 0.1, &JobConfig::default());
    }
}
