//! Sort: rank records by key (Hadoop example #1, Table I row 1).
//!
//! The paper highlights Sort as the OS-intensive outlier among the data
//! analysis workloads: input size equals output size, so every stage
//! writes its full volume to disk or network, and the computation itself
//! is only comparison.

use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};

/// Pure kernel: sort records by their key (used for verification and for
/// probe-based profiling).
pub fn sort_records(mut records: Vec<(String, String)>) -> Vec<(String, String)> {
    records.sort_by(|a, b| a.0.cmp(&b.0));
    records
}

/// MapReduce sort: identity map keyed on the record, totally ordered
/// output when `reduce_tasks == 1`, partition-ordered otherwise (as in
/// Hadoop TeraSort without the custom partitioner).
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn run(lines: Vec<String>, cfg: &JobConfig) -> Result<(Vec<String>, JobStats), JobError> {
    let (mut out, stats) = run_job(
        lines,
        cfg,
        |line: String, emit: &mut dyn FnMut(String, u32)| {
            emit(line, 1);
        },
        None,
        |k: &String, vs: &[u32]| vs.iter().map(|_| k.clone()).collect(),
    )?;
    // Hadoop writes one ordered file per reducer; concatenating partition
    // outputs sorted keeps verification simple without changing the I/O.
    out.sort();
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_sorts() {
        let recs = vec![
            ("b".to_string(), "2".to_string()),
            ("a".to_string(), "1".to_string()),
            ("c".to_string(), "3".to_string()),
        ];
        let sorted = sort_records(recs);
        assert_eq!(sorted[0].0, "a");
        assert_eq!(sorted[2].0, "c");
    }

    #[test]
    fn mapreduce_sort_orders_lines() {
        let lines: Vec<String> = vec!["pear", "apple", "mango", "apple", "banana"]
            .into_iter()
            .map(String::from)
            .collect();
        let (out, stats) = run(lines, &JobConfig::default()).expect("fault-free job");
        assert_eq!(out, vec!["apple", "apple", "banana", "mango", "pear"]);
        assert_eq!(stats.map_input_records, 5);
        assert_eq!(stats.reduce_output_records, 5);
    }

    #[test]
    fn sort_io_volume_matches_input() {
        // The paper's key observation: Sort's output volume equals its
        // input volume (shuffle carries everything).
        let lines: Vec<String> = (0..500)
            .map(|i| format!("line{:05}", 997 * i % 500))
            .collect();
        let input_bytes: u64 = lines.iter().map(|l| l.len() as u64 + 4).sum();
        let (_, stats) = run(lines, &JobConfig::default()).expect("fault-free job");
        assert!(
            stats.shuffle_bytes >= input_bytes,
            "shuffle carries the whole input"
        );
    }
}
