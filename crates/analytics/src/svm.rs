//! SVM: linear support-vector machine trained with Pegasos-style
//! stochastic sub-gradient descent (authors' implementation, Table I
//! row 5).
//!
//! The distributed variant mirrors the common Hadoop pattern for SGD:
//! each map task trains a local model on its split; the reducer averages
//! the models (parameter mixing); the driver iterates.

use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};

/// A linear model `y = sign(w · x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Weight vector.
    pub w: Vec<f64>,
}

impl LinearModel {
    /// Zero model of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        LinearModel { w: vec![0.0; dim] }
    }

    /// Decision value `w · x`.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.w.iter().zip(x).map(|(a, b)| a * b).sum()
    }

    /// Predicted label in `{-1, +1}`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.score(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Accuracy on a labeled set.
    pub fn accuracy(&self, data: &[(Vec<f64>, f64)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let ok = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        ok as f64 / data.len() as f64
    }
}

/// Pegasos epoch over one slice: hinge-loss sub-gradient steps with
/// `1/(λ t)` learning rate.
pub fn pegasos_epoch(
    model: &mut LinearModel,
    data: &[(Vec<f64>, f64)],
    lambda: f64,
    t0: u64,
) -> u64 {
    let mut t = t0;
    for (x, y) in data {
        t += 1;
        let eta = 1.0 / (lambda * t as f64);
        let margin = y * model.score(x);
        for w in model.w.iter_mut() {
            *w *= 1.0 - eta * lambda;
        }
        if margin < 1.0 {
            for (w, xi) in model.w.iter_mut().zip(x) {
                *w += eta * y * xi;
            }
        }
    }
    t
}

/// One distributed training round: map tasks train local models on their
/// splits, the reducer averages them. Returns the mixed model.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn train_round(
    data: Vec<(Vec<f64>, f64)>,
    start: &LinearModel,
    lambda: f64,
    cfg: &JobConfig,
) -> Result<(LinearModel, JobStats), JobError> {
    let dim = start.w.len();
    let start_w = start.w.clone();
    let (partials, stats) = run_job(
        data,
        cfg,
        move |chunk: (Vec<f64>, f64), emit: &mut dyn FnMut(u32, Vec<f64>)| {
            // Each record is one example; train a single-step local
            // update from the shared starting point. (Emitting per-record
            // gradients keeps the job's dataflow identical to parameter
            // mixing while staying deterministic across slot counts.)
            let mut local = LinearModel { w: start_w.clone() };
            pegasos_epoch(&mut local, std::slice::from_ref(&chunk), lambda, 1);
            emit(0, local.w);
        },
        None,
        |_k: &u32, models: &[Vec<f64>]| {
            let mut avg = vec![0.0; models.first().map_or(0, Vec::len)];
            for m in models {
                for (a, b) in avg.iter_mut().zip(m) {
                    *a += b / models.len() as f64;
                }
            }
            vec![avg]
        },
    )?;
    let w = partials
        .into_iter()
        .next()
        .unwrap_or_else(|| vec![0.0; dim]);
    Ok((LinearModel { w }, stats))
}

/// Full training: `rounds` of distributed parameter mixing followed by a
/// few sequential polish epochs (as Mahout-style drivers do).
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn train(
    data: &[(Vec<f64>, f64)],
    dim: usize,
    lambda: f64,
    rounds: u32,
    cfg: &JobConfig,
) -> Result<(LinearModel, JobStats), JobError> {
    let mut model = LinearModel::zeros(dim);
    let mut stats = JobStats::default();
    for _ in 0..rounds.max(1) {
        let (next, s) = train_round(data.to_vec(), &model, lambda, cfg)?;
        model = next;
        stats.accumulate(&s);
    }
    // Sequential polish for convergence quality.
    let mut t = 1;
    for _ in 0..3 {
        t = pegasos_epoch(&mut model, data, lambda, t);
    }
    Ok((model, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{vectors::linearly_separable, Scale};

    #[test]
    fn zero_model_scores_zero() {
        let m = LinearModel::zeros(4);
        assert_eq!(m.score(&[1.0, 2.0, 3.0, 4.0]), 0.0);
        assert_eq!(m.predict(&[1.0; 4]), 1.0);
    }

    #[test]
    fn pegasos_learns_separable_data() {
        let (data, _) = linearly_separable(3, Scale::bytes(48 << 10), 8, 0.0);
        let mut m = LinearModel::zeros(8);
        let mut t = 1;
        for _ in 0..5 {
            t = pegasos_epoch(&mut m, &data, 0.01, t);
        }
        let acc = m.accuracy(&data);
        assert!(acc > 0.9, "sequential pegasos accuracy {acc}");
    }

    #[test]
    fn distributed_training_learns() {
        let (data, _) = linearly_separable(5, Scale::bytes(32 << 10), 6, 0.02);
        let (model, stats) =
            train(&data, 6, 0.01, 2, &JobConfig::default()).expect("fault-free job");
        let acc = model.accuracy(&data);
        assert!(acc > 0.85, "distributed accuracy {acc}");
        assert!(stats.map_input_records > 0);
    }

    #[test]
    fn noise_bounds_accuracy() {
        let (data, _) = linearly_separable(7, Scale::bytes(32 << 10), 6, 0.25);
        let (model, _) = train(&data, 6, 0.01, 1, &JobConfig::default()).expect("fault-free job");
        let acc = model.accuracy(&data);
        assert!(acc < 0.95, "25% label noise caps accuracy: {acc}");
    }
}
