//! Hive-bench: data-warehouse operations (Table I row 11).
//!
//! A miniature Hive: a typed relational layer whose aggregation and join
//! operators compile to MapReduce jobs on the real engine — exactly how
//! Hive executes SQL — plus the three representative Hive-bench
//! (HIVE-396) queries over the `rankings`/`uservisits` tables:
//!
//! 1. **Filter scan** — `SELECT pageURL, pageRank FROM rankings WHERE
//!    pageRank > X`
//! 2. **Aggregation** — `SELECT prefix(sourceIP), SUM(adRevenue) FROM
//!    uservisits GROUP BY prefix(sourceIP)`
//! 3. **Join** — revenue/rank per source IP joining both tables on the
//!    URL, with a date filter and a top-1 ORDER BY.

use dc_datagen::tables::{RankingRow, UserVisitRow, Warehouse};
use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};

/// A dynamically-typed cell value.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Float view (ints coerce).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Str(_) => 0.0,
        }
    }

    /// String view.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            _ => "",
        }
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// Query 1: filter scan over `rankings`.
pub fn q1_filter_scan(w: &Warehouse, min_rank: u32) -> Vec<Row> {
    w.rankings
        .iter()
        .filter(|r| r.page_rank > min_rank)
        .map(|r| {
            vec![
                Value::Str(r.page_url.clone()),
                Value::Int(i64::from(r.page_rank)),
            ]
        })
        .collect()
}

/// Query 2: grouped aggregation over `uservisits` as a MapReduce job —
/// `SELECT substr(sourceIP, 1, 7), SUM(adRevenue) GROUP BY 1`.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn q2_aggregation(
    w: &Warehouse,
    cfg: &JobConfig,
) -> Result<(Vec<(String, f64)>, JobStats), JobError> {
    run_job(
        w.uservisits.clone(),
        cfg,
        |v: UserVisitRow, emit: &mut dyn FnMut(String, f64)| {
            let prefix: String = v.source_ip.chars().take(7).collect();
            emit(prefix, v.ad_revenue);
        },
        Some(&|_k: &String, vs: &[f64]| vec![vs.iter().sum::<f64>()]),
        |k: &String, vs: &[f64]| vec![(k.clone(), vs.iter().sum::<f64>())],
    )
}

/// Tagged join input: either side of the URL join.
#[derive(Debug, Clone)]
enum JoinSide {
    Ranking(RankingRow),
    Visit(UserVisitRow),
}

impl dc_mapreduce::ByteSize for JoinSide {
    fn byte_size(&self) -> usize {
        match self {
            JoinSide::Ranking(r) => r.page_url.len() + 12,
            JoinSide::Visit(v) => v.source_ip.len() + v.dest_url.len() + 24,
        }
    }
}

/// One tagged tuple flowing through the URL join: rank side or
/// (sourceIP, revenue) side.
type JoinTuple = (Option<u32>, Option<(String, f64)>);

/// Query 3's answer: the top-earning `(source_ip, revenue, avg_rank)`,
/// when any visits fall in the date window.
pub type TopEarner = Option<(String, f64, f64)>;

/// Query 3: repartition join + aggregation, Hive's `JOIN … GROUP BY`
/// plan — revenue and average rank per source IP over a date window,
/// returning the top earner.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn q3_join(
    w: &Warehouse,
    date_range: (u32, u32),
    cfg: &JobConfig,
) -> Result<(TopEarner, JobStats), JobError> {
    // Stage 1: repartition join on URL.
    let mut inputs: Vec<JoinSide> = w.rankings.iter().cloned().map(JoinSide::Ranking).collect();
    inputs.extend(
        w.uservisits
            .iter()
            .filter(|v| v.visit_date >= date_range.0 && v.visit_date < date_range.1)
            .cloned()
            .map(JoinSide::Visit),
    );
    let (joined, mut stats) = run_job(
        inputs,
        cfg,
        |side: JoinSide, emit: &mut dyn FnMut(String, JoinTuple)| match side {
            JoinSide::Ranking(r) => emit(r.page_url, (Some(r.page_rank), None)),
            JoinSide::Visit(v) => emit(v.dest_url, (None, Some((v.source_ip, v.ad_revenue)))),
        },
        None,
        |_url: &String, sides: &[JoinTuple]| {
            // Inner join: pair every visit with the URL's rank.
            let rank = sides.iter().find_map(|(r, _)| *r);
            let Some(rank) = rank else { return Vec::new() };
            sides
                .iter()
                .filter_map(|(_, v)| v.as_ref())
                .map(|(ip, rev)| (ip.clone(), rank, *rev))
                .collect::<Vec<(String, u32, f64)>>()
        },
    )?;

    // Stage 2: group by source IP, aggregate revenue and average rank.
    let (grouped, s2) = run_job(
        joined,
        cfg,
        |(ip, rank, rev): (String, u32, f64), emit: &mut dyn FnMut(String, (f64, f64, u64))| {
            emit(ip, (rev, f64::from(rank), 1));
        },
        Some(&|_k: &String, vs: &[(f64, f64, u64)]| {
            vec![vs
                .iter()
                .fold((0.0, 0.0, 0), |a, v| (a.0 + v.0, a.1 + v.1, a.2 + v.2))]
        }),
        |k: &String, vs: &[(f64, f64, u64)]| {
            let (rev, rank, n) = vs
                .iter()
                .fold((0.0, 0.0, 0u64), |a, v| (a.0 + v.0, a.1 + v.1, a.2 + v.2));
            vec![(k.clone(), rev, rank / n.max(1) as f64)]
        },
    )?;
    stats.accumulate(&s2);

    // ORDER BY totalRevenue DESC LIMIT 1 (driver-side, as Hive does for
    // a final single-reducer ordering).
    let top = grouped
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok((top, stats))
}

/// Run the whole Hive-bench query suite; returns combined statistics.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn run_suite(w: &Warehouse, cfg: &JobConfig) -> Result<(usize, JobStats), JobError> {
    let q1 = q1_filter_scan(w, 1000);
    let (q2, mut stats) = q2_aggregation(w, cfg)?;
    let (q3, s3) = q3_join(w, (14_000, 15_000), cfg)?;
    stats.accumulate(&s3);
    Ok((q1.len() + q2.len() + usize::from(q3.is_some()), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{tables::warehouse, Scale};

    fn small_warehouse() -> Warehouse {
        warehouse(61, Scale::bytes(96 << 10))
    }

    #[test]
    fn q1_filters_by_rank() {
        let w = small_warehouse();
        // page_rank follows 1e6/(i+1); 50 000 selects roughly the top 20.
        let rows = q1_filter_scan(&w, 50_000);
        assert!(!rows.is_empty());
        for row in &rows {
            match &row[1] {
                Value::Int(r) => assert!(*r > 50_000),
                other => panic!("expected int rank, got {other:?}"),
            }
        }
        let all = q1_filter_scan(&w, 0);
        assert!(all.len() > rows.len(), "filter must be selective");
    }

    #[test]
    fn q2_preserves_total_revenue() {
        let w = small_warehouse();
        let (groups, stats) = q2_aggregation(&w, &JobConfig::default()).expect("fault-free job");
        let grouped_total: f64 = groups.iter().map(|(_, r)| r).sum();
        let raw_total: f64 = w.uservisits.iter().map(|v| v.ad_revenue).sum();
        assert!((grouped_total - raw_total).abs() / raw_total < 1e-9);
        assert!(stats.map_input_records as usize == w.uservisits.len());
        assert!(groups.len() > 1, "multiple IP prefixes exist");
    }

    #[test]
    fn q3_join_finds_top_ip() {
        let w = small_warehouse();
        let (top, stats) =
            q3_join(&w, (14_000, 15_000), &JobConfig::default()).expect("fault-free job");
        let (ip, revenue, avg_rank) = top.expect("at least one visit in range");
        assert!(!ip.is_empty());
        assert!(revenue > 0.0);
        assert!(avg_rank >= 1.0);
        assert!(stats.shuffle_bytes > 0);
        // The top IP's revenue must equal its manual aggregate.
        let manual: f64 = w
            .uservisits
            .iter()
            .filter(|v| v.source_ip == ip)
            .map(|v| v.ad_revenue)
            .sum();
        assert!(
            (manual - revenue).abs() < 1e-9,
            "manual={manual} got={revenue}"
        );
    }

    #[test]
    fn q3_date_filter_is_effective() {
        let w = small_warehouse();
        let (none, _) = q3_join(&w, (0, 1), &JobConfig::default()).expect("fault-free job");
        assert!(none.is_none(), "empty date window joins nothing");
    }

    #[test]
    fn suite_runs_all_queries() {
        let w = small_warehouse();
        let (results, stats) = run_suite(&w, &JobConfig::default()).expect("fault-free job");
        assert!(results > 0);
        assert!(stats.map_input_records > 0);
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_f64(), 3.0);
        assert_eq!(Value::Float(2.5).as_f64(), 2.5);
        assert_eq!(Value::Str("x".into()).as_str(), "x");
        assert_eq!(Value::Int(1).as_str(), "");
    }
}
