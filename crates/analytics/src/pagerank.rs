//! PageRank (Mahout workload, Table I row 10): link analysis by power
//! iteration, "frequently used in search engine\[s\]".

use dc_datagen::graph::WebGraph;
use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};

/// Result of a PageRank computation.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Rank per node (sums to ~1).
    pub ranks: Vec<f64>,
    /// Iterations executed.
    pub iterations: u32,
    /// Accumulated engine statistics.
    pub stats: JobStats,
}

/// One power iteration as a MapReduce job: map distributes each node's
/// rank over its out-links, reduce sums incoming contributions and
/// applies the damping factor.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn iterate(
    graph: &WebGraph,
    ranks: &[f64],
    damping: f64,
    cfg: &JobConfig,
) -> Result<(Vec<f64>, JobStats), JobError> {
    let n = graph.num_nodes();
    let inputs: Vec<(u32, f64, Vec<u32>)> = graph
        .out_links
        .iter()
        .enumerate()
        .map(|(u, links)| (u as u32, ranks[u], links.clone()))
        .collect();
    // Dangling mass is redistributed uniformly, as in the canonical
    // formulation.
    let dangling: f64 = inputs
        .iter()
        .filter(|(_, _, l)| l.is_empty())
        .map(|(_, r, _)| r)
        .sum();

    let (contribs, stats) = run_job(
        inputs,
        cfg,
        |(_, rank, links): (u32, f64, Vec<u32>), emit: &mut dyn FnMut(u32, f64)| {
            if !links.is_empty() {
                let share = rank / links.len() as f64;
                for &v in &links {
                    emit(v, share);
                }
            }
        },
        Some(&|_k: &u32, vs: &[f64]| vec![vs.iter().sum::<f64>()]),
        |k: &u32, vs: &[f64]| vec![(*k, vs.iter().sum::<f64>())],
    )?;

    let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
    let mut next = vec![base; n];
    for (v, c) in contribs {
        next[v as usize] += damping * c;
    }
    Ok((next, stats))
}

/// Run PageRank until the L1 delta falls below `tol` or `max_iters`.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn run(
    graph: &WebGraph,
    damping: f64,
    max_iters: u32,
    tol: f64,
    cfg: &JobConfig,
) -> Result<PageRankResult, JobError> {
    let n = graph.num_nodes().max(1);
    let mut ranks = vec![1.0 / n as f64; n];
    let mut stats = JobStats::default();
    let mut iterations = 0;
    for _ in 0..max_iters {
        let (next, s) = iterate(graph, &ranks, damping, cfg)?;
        stats.accumulate(&s);
        iterations += 1;
        let delta: f64 = ranks.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        ranks = next;
        if delta < tol {
            break;
        }
    }
    Ok(PageRankResult {
        ranks,
        iterations,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{graph::web_graph, Scale};

    /// A 3-node cycle must converge to uniform ranks.
    #[test]
    fn cycle_is_uniform() {
        let graph = WebGraph {
            out_links: vec![vec![1], vec![2], vec![0]],
        };
        let result = run(&graph, 0.85, 50, 1e-10, &JobConfig::default()).expect("fault-free job");
        for r in &result.ranks {
            assert!((r - 1.0 / 3.0).abs() < 1e-6, "rank {r}");
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let graph = web_graph(51, Scale::bytes(32 << 10), 5);
        let result = run(&graph, 0.85, 20, 1e-8, &JobConfig::default()).expect("fault-free job");
        let total: f64 = result.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total rank {total}");
    }

    #[test]
    fn hubs_outrank_leaves() {
        let graph = web_graph(52, Scale::bytes(64 << 10), 6);
        let result = run(&graph, 0.85, 25, 1e-9, &JobConfig::default()).expect("fault-free job");
        let deg = graph.in_degrees();
        let (hub, _) = deg
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .expect("nonempty");
        let (leaf, _) = deg
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .expect("nonempty");
        assert!(
            result.ranks[hub] > result.ranks[leaf] * 5.0,
            "hub {} should far outrank leaf {}",
            result.ranks[hub],
            result.ranks[leaf]
        );
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // Node 1 dangles; ranks must still sum to 1.
        let graph = WebGraph {
            out_links: vec![vec![1], vec![], vec![0]],
        };
        let result = run(&graph, 0.85, 30, 1e-10, &JobConfig::default()).expect("fault-free job");
        let total: f64 = result.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn converges_before_cap() {
        let graph = web_graph(53, Scale::bytes(16 << 10), 4);
        let result = run(&graph, 0.85, 100, 1e-6, &JobConfig::default()).expect("fault-free job");
        assert!(result.iterations < 100);
        assert!(result.iterations > 2);
    }
}
