//! Grep: extract and count matching strings (Hadoop example, Table I
//! row 3).
//!
//! Implements its own pattern matcher (no regex dependency): literal
//! substring search plus the `.` (any char) and `*` (zero-or-more of
//! previous) operators — the subset Hadoop-example grep jobs typically
//! use.

use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};

/// A compiled pattern: literal with optional `.`/`*` operators.
#[derive(Debug, Clone)]
pub struct Pattern {
    ops: Vec<PatOp>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PatOp {
    Char(u8),
    Any,
    Star(u8),
    AnyStar,
}

impl Pattern {
    /// Compile a pattern. `.` matches any byte; `x*` matches zero or
    /// more `x`; `.*` matches anything.
    pub fn compile(pat: &str) -> Pattern {
        let bytes = pat.as_bytes();
        let mut ops = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let starred = bytes.get(i + 1) == Some(&b'*');
            let op = match (c, starred) {
                (b'.', true) => PatOp::AnyStar,
                (b'.', false) => PatOp::Any,
                (c, true) => PatOp::Star(c),
                (c, false) => PatOp::Char(c),
            };
            ops.push(op);
            i += if starred { 2 } else { 1 };
        }
        Pattern { ops }
    }

    /// Whether the pattern matches starting exactly at `text[pos..]`,
    /// returning the match end when it does.
    fn match_at(&self, text: &[u8], pos: usize, op_idx: usize) -> Option<usize> {
        if op_idx == self.ops.len() {
            return Some(pos);
        }
        match self.ops[op_idx] {
            PatOp::Char(c) => (text.get(pos) == Some(&c))
                .then(|| self.match_at(text, pos + 1, op_idx + 1))
                .flatten(),
            PatOp::Any => (pos < text.len())
                .then(|| self.match_at(text, pos + 1, op_idx + 1))
                .flatten(),
            PatOp::Star(c) => {
                let mut end = pos;
                while text.get(end) == Some(&c) {
                    end += 1;
                }
                // Greedy with backtracking.
                loop {
                    if let Some(m) = self.match_at(text, end, op_idx + 1) {
                        return Some(m);
                    }
                    if end == pos {
                        return None;
                    }
                    end -= 1;
                }
            }
            PatOp::AnyStar => {
                let mut end = text.len();
                loop {
                    if let Some(m) = self.match_at(text, end, op_idx + 1) {
                        return Some(m);
                    }
                    if end == pos {
                        return None;
                    }
                    end -= 1;
                }
            }
        }
    }

    /// Find the first match in `text`, returning the matched substring.
    pub fn find<'t>(&self, text: &'t str) -> Option<&'t str> {
        let bytes = text.as_bytes();
        for start in 0..=bytes.len() {
            if let Some(end) = self.match_at(bytes, start, 0) {
                if end > start {
                    return std::str::from_utf8(&bytes[start..end]).ok();
                }
            }
        }
        None
    }

    /// Count non-overlapping matches in `text`.
    pub fn count(&self, text: &str) -> u64 {
        let bytes = text.as_bytes();
        let mut n = 0;
        let mut start = 0;
        while start < bytes.len() {
            match self.match_at(bytes, start, 0) {
                Some(end) if end > start => {
                    n += 1;
                    start = end;
                }
                _ => start += 1,
            }
        }
        n
    }
}

/// MapReduce grep: map extracts match counts per matched string, reduce
/// sums them (the Hadoop grep example's first job).
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn run(
    docs: Vec<String>,
    pattern: &str,
    cfg: &JobConfig,
) -> Result<(Vec<(String, u64)>, JobStats), JobError> {
    let pat = Pattern::compile(pattern);
    run_job(
        docs,
        cfg,
        move |doc: String, emit: &mut dyn FnMut(String, u64)| {
            for word in doc.split_whitespace() {
                if let Some(m) = pat.find(word) {
                    emit(m.to_string(), 1);
                }
            }
        },
        Some(&|_k: &String, vs: &[u64]| vec![vs.iter().sum::<u64>()]),
        |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let p = Pattern::compile("abc");
        assert_eq!(p.find("xxabcyy"), Some("abc"));
        assert_eq!(p.find("xyz"), None);
        assert_eq!(p.count("abc abc ab abc"), 3);
    }

    #[test]
    fn dot_matches_any() {
        let p = Pattern::compile("a.c");
        assert_eq!(p.find("azc"), Some("azc"));
        assert_eq!(p.find("ac"), None);
    }

    #[test]
    fn star_matches_repeats() {
        let p = Pattern::compile("ab*c");
        assert_eq!(p.find("ac"), Some("ac"));
        assert_eq!(p.find("abbbc"), Some("abbbc"));
        assert_eq!(p.find("adc"), None);
    }

    #[test]
    fn dot_star_matches_gap() {
        let p = Pattern::compile("a.*z");
        assert_eq!(p.find("a-hello-z"), Some("a-hello-z"));
        assert_eq!(p.find("za"), None);
    }

    #[test]
    fn mapreduce_grep_counts_matches() {
        let docs = vec![
            "error42 warn error7 info".to_string(),
            "error42 trace".to_string(),
        ];
        let (mut out, stats) = run(docs, "error4.", &JobConfig::default()).expect("fault-free job");
        out.sort();
        assert_eq!(out, vec![("error42".to_string(), 2)]);
        assert!(stats.map_output_records >= 2);
    }

    #[test]
    fn grep_selectivity_shrinks_shuffle() {
        let docs: Vec<String> = (0..200)
            .map(|i| format!("needle{} hay hay hay", i % 3))
            .collect();
        let (_, stats) = run(docs, "needle0", &JobConfig::default()).expect("fault-free job");
        // Only ~1/4 of words match; shuffle must be far below input.
        assert!(stats.shuffle_bytes < stats.map_input_bytes / 4);
    }
}
