//! Naive Bayes: multinomial text classifier (Mahout workload, Table I
//! row 4 — the one data-analysis workload CloudSuite also includes).

use dc_datagen::text::LabeledDoc;
use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};
use std::collections::HashMap;

/// A trained multinomial Naive Bayes model.
#[derive(Debug, Clone)]
pub struct Model {
    /// Log prior per class.
    pub log_prior: Vec<f64>,
    /// Log likelihood per (class, word), Laplace-smoothed.
    pub log_likelihood: Vec<HashMap<String, f64>>,
    /// Log of the smoothing mass for unseen words, per class.
    pub log_unseen: Vec<f64>,
}

impl Model {
    /// Classify a document: argmax over classes of
    /// `log P(c) + Σ log P(w|c)`.
    pub fn classify(&self, text: &str) -> u32 {
        let mut best = (0u32, f64::NEG_INFINITY);
        for c in 0..self.log_prior.len() {
            let mut score = self.log_prior[c];
            for w in text.split_whitespace() {
                score += self.log_likelihood[c]
                    .get(w)
                    .copied()
                    .unwrap_or(self.log_unseen[c]);
            }
            if score > best.1 {
                best = (c as u32, score);
            }
        }
        best.0
    }
}

/// Train on labeled documents via MapReduce: map emits
/// `(class:word) → count` and `(class) → doc count`; reduce sums; the
/// driver assembles log-probabilities (mirroring Mahout's trainer jobs).
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn train(
    docs: Vec<LabeledDoc>,
    classes: u32,
    cfg: &JobConfig,
) -> Result<(Model, JobStats), JobError> {
    let (pairs, stats) = run_job(
        docs,
        cfg,
        |doc: LabeledDoc, emit: &mut dyn FnMut(String, u64)| {
            emit(format!("D{}", doc.label), 1);
            for w in doc.text.split_whitespace() {
                emit(format!("W{}:{}", doc.label, w), 1);
            }
        },
        Some(&|_k: &String, vs: &[u64]| vec![vs.iter().sum::<u64>()]),
        |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
    )?;

    let mut doc_counts = vec![0u64; classes as usize];
    let mut word_counts: Vec<HashMap<String, u64>> = vec![HashMap::new(); classes as usize];
    let mut vocab: HashMap<String, ()> = HashMap::new();
    for (key, count) in pairs {
        if let Some(rest) = key.strip_prefix('D') {
            let c: usize = rest.parse().expect("class id");
            doc_counts[c] += count;
        } else if let Some(rest) = key.strip_prefix('W') {
            let (c, w) = rest.split_once(':').expect("class:word");
            let c: usize = c.parse().expect("class id");
            vocab.insert(w.to_string(), ());
            *word_counts[c].entry(w.to_string()).or_insert(0) += count;
        }
    }

    let total_docs: u64 = doc_counts.iter().sum::<u64>().max(1);
    let v = vocab.len().max(1) as f64;
    let mut log_prior = Vec::with_capacity(classes as usize);
    let mut log_likelihood = Vec::with_capacity(classes as usize);
    let mut log_unseen = Vec::with_capacity(classes as usize);
    for c in 0..classes as usize {
        log_prior.push(((doc_counts[c] + 1) as f64 / (total_docs + classes as u64) as f64).ln());
        let total_words: u64 = word_counts[c].values().sum();
        let denom = total_words as f64 + v;
        log_likelihood.push(
            word_counts[c]
                .iter()
                .map(|(w, &n)| (w.clone(), ((n as f64 + 1.0) / denom).ln()))
                .collect(),
        );
        log_unseen.push((1.0 / denom).ln());
    }
    Ok((
        Model {
            log_prior,
            log_likelihood,
            log_unseen,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{text::labeled_documents, Scale};

    fn mk(label: u32, text: &str) -> LabeledDoc {
        LabeledDoc {
            label,
            text: text.to_string(),
        }
    }

    #[test]
    fn learns_simple_separation() {
        let docs = vec![
            mk(0, "spam offer money money"),
            mk(0, "spam winner money"),
            mk(1, "meeting notes agenda"),
            mk(1, "project meeting schedule"),
        ];
        let (model, _) = train(docs, 2, &JobConfig::default()).expect("fault-free job");
        assert_eq!(model.classify("money offer spam"), 0);
        assert_eq!(model.classify("agenda for the meeting"), 1);
    }

    #[test]
    fn accuracy_on_generated_corpus() {
        let docs = labeled_documents(11, Scale::bytes(96 << 10), 3, 40);
        let split = docs.len() * 4 / 5;
        let (train_docs, test_docs) = docs.split_at(split);
        let (model, stats) =
            train(train_docs.to_vec(), 3, &JobConfig::default()).expect("fault-free job");
        let correct = test_docs
            .iter()
            .filter(|d| model.classify(&d.text) == d.label)
            .count();
        let acc = correct as f64 / test_docs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc} on topical corpus");
        assert!(stats.map_output_records > 0);
    }

    #[test]
    fn priors_reflect_class_balance() {
        let docs = vec![mk(0, "a"), mk(0, "b"), mk(0, "c"), mk(1, "d")];
        let (model, _) = train(docs, 2, &JobConfig::default()).expect("fault-free job");
        assert!(model.log_prior[0] > model.log_prior[1]);
    }

    #[test]
    fn unseen_words_do_not_panic() {
        let (model, _) =
            train(vec![mk(0, "x"), mk(1, "y")], 2, &JobConfig::default()).expect("fault-free job");
        let _ = model.classify("totally unseen words only");
    }
}
