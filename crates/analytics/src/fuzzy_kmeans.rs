//! Fuzzy K-means (Mahout workload, Table I row 7).
//!
//! The soft-clustering extension of K-means: every point belongs to
//! every cluster with a membership weight
//! `u_ij = 1 / Σ_k (d_ij / d_ik)^(2/(m-1))`, and centers are
//! membership-weighted means. The paper calls out that it is
//! "statistically formalized and quite different" from K-means — it runs
//! ~5× more instructions on the same input (Table I: 15470 vs 3227
//! billion), which our implementation reproduces structurally: every
//! point contributes to every center every iteration.

use crate::kmeans::dist2;
use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};

/// Membership weights of one point to all centers (sums to 1).
pub fn memberships(point: &[f64], centers: &[Vec<f64>], m: f64) -> Vec<f64> {
    let exp = 2.0 / (m - 1.0);
    let d: Vec<f64> = centers.iter().map(|c| dist2(point, c).sqrt()).collect();
    // Exact-hit handling: all mass on the coincident center.
    if let Some(hit) = d.iter().position(|&x| x < 1e-12) {
        let mut u = vec![0.0; centers.len()];
        u[hit] = 1.0;
        return u;
    }
    let mut u = Vec::with_capacity(centers.len());
    for i in 0..centers.len() {
        let denom: f64 = d.iter().map(|&dk| (d[i] / dk).powf(exp)).sum();
        u.push(1.0 / denom);
    }
    u
}

/// Result of a fuzzy K-means run.
#[derive(Debug, Clone)]
pub struct FuzzyResult {
    /// Final centers.
    pub centers: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: u32,
    /// Accumulated engine statistics.
    pub stats: JobStats,
}

/// One fuzzy iteration as a MapReduce job: map emits
/// `(cluster) → (uᵐ·x, uᵐ)` for **every** cluster, reduce computes the
/// weighted means.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn iterate(
    points: &[Vec<f64>],
    centers: &[Vec<f64>],
    m: f64,
    cfg: &JobConfig,
) -> Result<(Vec<Vec<f64>>, JobStats), JobError> {
    let centers_owned = centers.to_vec();
    let k = centers.len();
    let (sums, stats) = run_job(
        points.to_vec(),
        cfg,
        move |p: Vec<f64>, emit: &mut dyn FnMut(u32, (Vec<f64>, f64))| {
            let u = memberships(&p, &centers_owned, m);
            for (i, ui) in u.iter().enumerate() {
                let w = ui.powf(m);
                let weighted: Vec<f64> = p.iter().map(|x| x * w).collect();
                emit(i as u32, (weighted, w));
            }
        },
        Some(&|_k: &u32, vs: &[(Vec<f64>, f64)]| vec![weighted_sum(vs)]),
        |key: &u32, vs: &[(Vec<f64>, f64)]| {
            let (sum, w) = weighted_sum(vs);
            let center: Vec<f64> = sum.iter().map(|s| s / w.max(1e-12)).collect();
            vec![(*key, center)]
        },
    )?;
    let mut new_centers = centers.to_vec();
    for (c, center) in sums {
        if (c as usize) < k {
            new_centers[c as usize] = center;
        }
    }
    Ok((new_centers, stats))
}

fn weighted_sum(vs: &[(Vec<f64>, f64)]) -> (Vec<f64>, f64) {
    let dim = vs.first().map_or(0, |(p, _)| p.len());
    let mut sum = vec![0.0; dim];
    let mut w = 0.0;
    for (p, wi) in vs {
        for (s, x) in sum.iter_mut().zip(p) {
            *s += x;
        }
        w += wi;
    }
    (sum, w)
}

/// Run fuzzy K-means with fuzziness `m` (> 1; Mahout default 2.0).
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn run(
    points: &[Vec<f64>],
    k: usize,
    m: f64,
    max_iters: u32,
    tol: f64,
    cfg: &JobConfig,
) -> Result<FuzzyResult, JobError> {
    assert!(k > 0 && !points.is_empty(), "need points and k > 0");
    assert!(m > 1.0, "fuzziness must exceed 1");
    let mut centers: Vec<Vec<f64>> = (0..k)
        .map(|i| points[i * points.len() / k].clone())
        .collect();
    let mut stats = JobStats::default();
    let mut iterations = 0;
    for _ in 0..max_iters {
        let (next, s) = iterate(points, &centers, m, cfg)?;
        stats.accumulate(&s);
        iterations += 1;
        let moved: f64 = centers
            .iter()
            .zip(&next)
            .map(|(a, b)| dist2(a, b))
            .sum::<f64>()
            .sqrt();
        centers = next;
        if moved < tol {
            break;
        }
    }
    Ok(FuzzyResult {
        centers,
        iterations,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{vectors::gaussian_mixture, Scale};

    #[test]
    fn memberships_sum_to_one() {
        let centers = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![10.0, 0.0]];
        let u = memberships(&[1.0, 1.0], &centers, 2.0);
        let total: f64 = u.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(u[0] > u[1] && u[0] > u[2], "closest center gets most mass");
    }

    #[test]
    fn coincident_point_gets_full_membership() {
        let centers = vec![vec![1.0, 2.0], vec![5.0, 5.0]];
        let u = memberships(&[1.0, 2.0], &centers, 2.0);
        assert_eq!(u, vec![1.0, 0.0]);
    }

    #[test]
    fn recovers_separated_clusters() {
        let set = gaussian_mixture(31, Scale::bytes(96 << 10), 3, 4);
        let result =
            run(&set.points, 3, 2.0, 15, 1e-3, &JobConfig::default()).expect("fault-free job");
        for truth in &set.true_centers {
            let best = result
                .centers
                .iter()
                .map(|c| dist2(c, truth))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 6.0, "no center near {truth:?} (d²={best})");
        }
    }

    #[test]
    fn does_more_work_than_kmeans() {
        // Table I: Fuzzy K-means retires ~5x the instructions of K-means.
        // Structurally: its shuffle carries k× the records.
        let set = gaussian_mixture(32, Scale::bytes(32 << 10), 4, 3);
        let (_, fuzzy_stats) = iterate(
            &set.points,
            &[vec![0.0; 3], vec![1.0; 3], vec![2.0; 3], vec![3.0; 3]],
            2.0,
            &JobConfig::default(),
        )
        .expect("fault-free job");
        let (_, hard_stats) = crate::kmeans::iterate(
            &set.points,
            &[vec![0.0; 3], vec![1.0; 3], vec![2.0; 3], vec![3.0; 3]],
            &JobConfig::default(),
        )
        .expect("fault-free job");
        assert!(
            fuzzy_stats.map_output_records >= 3 * hard_stats.map_output_records,
            "fuzzy emits one record per (point, cluster)"
        );
    }

    #[test]
    #[should_panic]
    fn fuzziness_must_exceed_one() {
        let _ = run(&[vec![0.0]], 1, 1.0, 1, 0.1, &JobConfig::default());
    }
}
