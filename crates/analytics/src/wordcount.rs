//! WordCount: occurrences of each word (Hadoop example, Table I row 2).

use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};
use std::collections::HashMap;

/// Pure kernel: count words in a corpus.
pub fn count_words(docs: &[String]) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for doc in docs {
        for w in doc.split_whitespace() {
            *counts.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

/// MapReduce WordCount with map-side combining (the Hadoop example uses
/// the reducer as combiner, as we do here).
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]); this can
/// only happen under injected or real repeated task failures.
pub fn run(docs: Vec<String>, cfg: &JobConfig) -> Result<(Vec<(String, u64)>, JobStats), JobError> {
    run_job(
        docs,
        cfg,
        |doc: String, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1);
            }
        },
        Some(&|_k: &String, vs: &[u64]| vec![vs.iter().sum::<u64>()]),
        |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kernel_counts() {
        let docs = vec!["a b a".to_string(), "b c".to_string()];
        let counts = count_words(&docs);
        assert_eq!(counts["a"], 2);
        assert_eq!(counts["b"], 2);
        assert_eq!(counts["c"], 1);
    }

    #[test]
    fn mapreduce_matches_kernel() {
        let docs: Vec<String> = (0..100)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let expected = count_words(&docs);
        let (out, _) = run(docs, &JobConfig::default()).expect("fault-free job");
        assert_eq!(out.len(), expected.len());
        for (w, c) in out {
            assert_eq!(expected[&w], c, "count mismatch for {w}");
        }
    }

    proptest! {
        /// Total counted words always equals total input words, for any
        /// corpus and any parallelism.
        #[test]
        fn conservation_of_words(
            docs in proptest::collection::vec("[a-c ]{0,40}", 0..20),
            slots in 1usize..6,
        ) {
            let docs: Vec<String> = docs;
            let total_in: u64 =
                docs.iter().map(|d| d.split_whitespace().count() as u64).sum();
            let cfg = JobConfig { map_slots: slots, ..JobConfig::default() };
            let (out, _) = run(docs, &cfg).expect("fault-free job");
            let total_out: u64 = out.iter().map(|(_, c)| *c).sum();
            prop_assert_eq!(total_in, total_out);
        }
    }
}
