//! IBCF: item-based collaborative filtering (Mahout workload, Table I
//! row 8).
//!
//! Two MapReduce stages, as in Mahout's item-similarity pipeline:
//! (1) group ratings by user and emit co-rated item pairs;
//! (2) aggregate pair statistics into adjusted-cosine similarities.
//! Prediction then scores an item for a user as the similarity-weighted
//! average of the user's ratings on related items — "estimates a user's
//! preference towards an item by looking at his/her preferences towards
//! related items".

use dc_datagen::ratings::{Rating, RatingSet};
use dc_mapreduce::engine::{run_job, JobConfig, JobError, JobStats};
use std::collections::HashMap;

/// Item-item similarity model.
#[derive(Debug, Clone, Default)]
pub struct SimilarityModel {
    /// `sim[(a, b)]` with `a < b`: cosine similarity of rating vectors.
    pub sim: HashMap<(u32, u32), f64>,
}

impl SimilarityModel {
    /// Similarity between two items (symmetric; 0 when unknown).
    pub fn similarity(&self, a: u32, b: u32) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = (a.min(b), a.max(b));
        self.sim.get(&key).copied().unwrap_or(0.0)
    }

    /// Predict `user`'s rating of `item` from their other ratings.
    pub fn predict(&self, user_ratings: &[(u32, f32)], item: u32) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for &(other, r) in user_ratings {
            if other == item {
                continue;
            }
            let s = self.similarity(item, other);
            if s > 0.0 {
                num += s * f64::from(r);
                den += s;
            }
        }
        (den > 0.0).then(|| num / den)
    }
}

/// Train the item-item model on a rating set via MapReduce.
///
/// # Errors
/// Fails when a task exhausts its attempts (see [`JobError`]).
pub fn train(set: &RatingSet, cfg: &JobConfig) -> Result<(SimilarityModel, JobStats), JobError> {
    // Stage 1: group by user → co-rated pairs.
    let (pairs, mut stats) = run_job(
        set.ratings.clone(),
        cfg,
        |r: Rating, emit: &mut dyn FnMut(u32, (u32, f64))| {
            emit(r.user, (r.item, f64::from(r.value)));
        },
        None,
        |_user: &u32, items: &[(u32, f64)]| {
            // Emit every co-rated pair with the rating product and
            // squared terms needed for cosine similarity.
            let mut out = Vec::new();
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let (a, ra) = items[i];
                    let (b, rb) = items[j];
                    if a == b {
                        continue;
                    }
                    let (lo, rlo, hi, rhi) = if a < b {
                        (a, ra, b, rb)
                    } else {
                        (b, rb, a, ra)
                    };
                    out.push(((lo, hi), (rlo * rhi, rlo * rlo, rhi * rhi)));
                }
            }
            out
        },
    )?;

    // Stage 2: aggregate pair statistics into similarities.
    let (sims, s2) = run_job(
        pairs,
        cfg,
        |(pair, terms): ((u32, u32), (f64, f64, f64)),
         emit: &mut dyn FnMut((u32, u32), (f64, f64, f64))| {
            emit(pair, terms);
        },
        Some(&|_k: &(u32, u32), vs: &[(f64, f64, f64)]| {
            vec![vs.iter().fold((0.0, 0.0, 0.0), |acc, v| {
                (acc.0 + v.0, acc.1 + v.1, acc.2 + v.2)
            })]
        }),
        |k: &(u32, u32), vs: &[(f64, f64, f64)]| {
            let (dot, na, nb) = vs.iter().fold((0.0, 0.0, 0.0), |acc, v| {
                (acc.0 + v.0, acc.1 + v.1, acc.2 + v.2)
            });
            let denom = (na.sqrt() * nb.sqrt()).max(1e-12);
            vec![(*k, dot / denom)]
        },
    )?;
    stats.accumulate(&s2);

    let model = SimilarityModel {
        sim: sims.into_iter().collect(),
    };
    Ok((model, stats))
}

/// Collect each user's ratings (driver-side helper for prediction).
pub fn user_profiles(set: &RatingSet) -> HashMap<u32, Vec<(u32, f32)>> {
    let mut profiles: HashMap<u32, Vec<(u32, f32)>> = HashMap::new();
    for r in &set.ratings {
        profiles.entry(r.user).or_default().push((r.item, r.value));
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{ratings::ratings, Scale};

    fn tiny_set() -> RatingSet {
        // Items 0,1 always co-liked; item 2 disliked by those users.
        let mut rs = Vec::new();
        for user in 0..6u32 {
            rs.push(Rating {
                user,
                item: 0,
                value: 5.0,
            });
            rs.push(Rating {
                user,
                item: 1,
                value: 5.0,
            });
            rs.push(Rating {
                user,
                item: 2,
                value: 1.0,
            });
        }
        RatingSet {
            ratings: rs,
            num_users: 6,
            num_items: 3,
            item_genre: vec![0, 0, 1],
        }
    }

    #[test]
    fn co_liked_items_are_similar() {
        let (model, stats) = train(&tiny_set(), &JobConfig::default()).expect("fault-free job");
        assert!(model.similarity(0, 1) > 0.99);
        assert!(model.similarity(0, 1) > model.similarity(0, 2) - 1e-9);
        assert!(stats.map_input_records > 0);
    }

    #[test]
    fn similarity_is_symmetric_and_reflexive() {
        let (model, _) = train(&tiny_set(), &JobConfig::default()).expect("fault-free job");
        assert_eq!(model.similarity(0, 1), model.similarity(1, 0));
        assert_eq!(model.similarity(2, 2), 1.0);
    }

    #[test]
    fn prediction_follows_taste_groups() {
        let set = ratings(41, Scale::bytes(96 << 10), 2);
        let (model, _) = train(&set, &JobConfig::default()).expect("fault-free job");
        let profiles = user_profiles(&set);
        // For users with enough history, predicted ratings for same-genre
        // items should generally beat cross-genre ones.
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for (_, profile) in profiles.iter().take(50) {
            if profile.len() < 6 {
                continue;
            }
            // Dominant liked genre for this user.
            let liked: Vec<u32> = profile
                .iter()
                .filter(|(_, v)| *v >= 4.0)
                .map(|(i, _)| *i)
                .collect();
            let Some(&anchor) = liked.first() else {
                continue;
            };
            let genre = set.item_genre[anchor as usize];
            for item in 0..set.num_items {
                if profile.iter().any(|(i, _)| *i == item) {
                    continue;
                }
                if let Some(p) = model.predict(profile, item) {
                    if set.item_genre[item as usize] == genre {
                        same.push(p);
                    } else {
                        cross.push(p);
                    }
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!same.is_empty() && !cross.is_empty());
        assert!(
            mean(&same) > mean(&cross),
            "same-genre predictions {:.2} should beat cross-genre {:.2}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn predict_without_overlap_is_none() {
        let (model, _) = train(&tiny_set(), &JobConfig::default()).expect("fault-free job");
        assert_eq!(model.predict(&[], 0), None);
    }
}
