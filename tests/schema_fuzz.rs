//! Fuzz-style robustness tests for `dc_benches::schema`'s hand-rolled
//! JSON parser and event validators.
//!
//! The parser's job is reading JSONL artifacts off disk — files that
//! may be truncated mid-write, corrupted, or adversarial. The contract
//! under test: **every** malformed input comes back as `Err`, never a
//! panic, and never a stack overflow (which would abort the process,
//! not unwind). Inputs that happen to be well-formed may parse; what
//! is forbidden is any third outcome.
//!
//! The same adversarial corpus is replayed against the dc-store log
//! format (`dc_store::recover` and `decode_payload`), which reads the
//! same parser's output off the same kind of hostile disk — there the
//! contract is stronger still: recovery is *total*, returning a
//! `Recovery` (possibly empty) for any byte soup, never an error and
//! never a panic.

use dc_benches::schema::{parse_json, validate_line, validate_stream, Json};
use dc_store::{decode_payload, frame_line, recover};
use proptest::prelude::*;

/// A representative valid event line (a documented kind with all its
/// required fields), used as the seed for truncation/corruption tests.
const GOOD_LINE: &str =
    r#"{"seq":0,"ts":0,"kind":"cache_hit","fields":{"entry":"Sort","corun":1}}"#;

proptest! {
    /// Arbitrary bytes (lossily decoded): parse and validate must
    /// return, not panic. Whatever parses must also re-`get` safely.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(0u16..256, 0..300)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(doc) = parse_json(&text) {
            let _ = doc.get("seq");
        }
        let _ = validate_line(&text);
        let _ = validate_stream(&text);
    }

    /// Structural garbage — random soups of JSON punctuation, digits
    /// and quotes, the shapes most likely to walk deep into the
    /// parser's recursion — never panics either.
    #[test]
    fn json_shaped_garbage_never_panics(text in r#"[{}:,"0-9a-z. -]{0,120}"#) {
        if let Ok(doc) = parse_json(&text) {
            let _ = doc.get("kind");
        }
        let _ = validate_line(&text);
    }

    /// Every proper prefix of a valid event line is an error for both
    /// the parser and the validator: the closing brace comes last, so
    /// no truncation point leaves a complete document.
    #[test]
    fn truncated_lines_are_errors(cut in 0usize..71) {
        // 0..71 covers every proper prefix of GOOD_LINE (len 71).
        prop_assert_eq!(GOOD_LINE.len(), 71);
        let prefix = &GOOD_LINE[..cut];
        prop_assert!(parse_json(prefix).is_err(), "prefix {prefix:?} parsed");
        prop_assert!(validate_line(prefix).is_err());
    }

    /// Unbalanced nesting at any depth is an error, and past the
    /// parser's depth cap even *balanced* nesting is rejected rather
    /// than recursed into — arbitrarily deep input must never turn
    /// into a stack overflow.
    #[test]
    fn deep_nesting_is_an_error_not_an_overflow(depth in 1usize..200_000) {
        let open = "[".repeat(depth);
        prop_assert!(parse_json(&open).is_err());
        let balanced = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        match parse_json(&balanced) {
            Ok(_) => prop_assert!(depth <= 128, "depth {depth} should exceed the cap"),
            Err(e) => prop_assert!(
                depth > 128,
                "balanced depth {depth} under the cap was rejected: {e}"
            ),
        }
    }

    /// Duplicate keys are rejected wherever they appear — in the event
    /// envelope or nested inside `fields`.
    #[test]
    fn duplicate_keys_are_errors(key in "[a-z]{1,8}", a in 0u64..100, b in 0u64..100) {
        let doc = format!(r#"{{"{key}":{a},"{key}":{b}}}"#);
        let err = parse_json(&doc).unwrap_err();
        prop_assert!(err.contains("duplicate key"), "got: {err}");
        let nested = format!(
            r#"{{"seq":0,"ts":0,"kind":"cache_hit","fields":{{"entry":"S","corun":1,"{key}":{a},"{key}":{b}}}}}"#
        );
        prop_assert!(validate_line(&nested).is_err());
    }

    /// The store format under the same byte soup: recovery is total
    /// (always a Recovery, never a panic), record decoding is closed
    /// (always Ok-or-Err), and whatever survives is schema-valid.
    #[test]
    fn store_recovery_is_total_on_arbitrary_bytes(bytes in collection::vec(0u16..256, 0..300)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let rec = recover(&bytes);
        prop_assert!(rec.records.iter().all(|r| !r.counts.is_empty()));
        let text = String::from_utf8_lossy(&bytes);
        let _ = decode_payload(&text);
    }

    /// Frame-shaped garbage — lines that *look* like store frames
    /// (kind letter, digits, hex, JSON-ish payloads) — is the corpus
    /// most likely to get deep into frame parsing. Still total, and a
    /// frame whose checksum field is damaged never yields a record.
    #[test]
    fn store_frame_shaped_garbage_never_panics(
        lines in collection::vec(r#"[hr 0-9a-f{}:,"]{0,60}"#, 0..6),
    ) {
        let mut bytes = Vec::new();
        for l in &lines {
            bytes.extend_from_slice(l.as_bytes());
            bytes.push(b'\n');
        }
        let rec = recover(&bytes);
        // None of these lines carries a CRC computed over its payload
        // (the odds across a 64-case run are negligible, and the seed
        // is deterministic), so nothing may be served.
        prop_assert!(rec.records.is_empty(), "garbage line verified: {lines:?}");
        prop_assert_eq!(rec.truncated_bytes, 0, "every line was terminated");
    }

    /// Every proper prefix of a valid framed record is either a torn
    /// tail (no newline survived) or a corrupt line — never a served
    /// record, and never a panic.
    #[test]
    fn truncated_store_frames_are_torn_or_quarantined(cut_permille in 0u64..1000) {
        let payload = r#"{"entry":"Sort","cfg":"1","max_ops":"9","warmup_ops":"0","seed":"7","corun":"1","counts":[["1","2","3","4","5","6","7","8","9","10","11","12","13","14","15","16","17","18","19","20","21","22","23","24","25","26","27","28","29"]]}"#;
        let frame = frame_line(b'r', payload);
        let cut = (cut_permille as usize * frame.len()) / 1000;
        let rec = recover(&frame[..cut]);
        prop_assert!(rec.records.is_empty(), "prefix of length {cut} served a record");
        if cut > 0 {
            prop_assert!(
                rec.truncated_bytes == cut as u64 || rec.corrupt_skipped == 1,
                "prefix of length {cut} neither torn nor quarantined"
            );
        }
    }
}

#[test]
fn nesting_at_the_cap_parses_and_one_past_does_not() {
    // 127 array levels + the implicit depth of the value inside.
    let ok = format!("{}0{}", "[".repeat(128), "]".repeat(128));
    assert!(parse_json(&ok).is_ok());
    let too_deep = format!("{}0{}", "[".repeat(129), "]".repeat(129));
    let err = parse_json(&too_deep).unwrap_err();
    assert!(err.contains("nesting deeper"), "got: {err}");
}

#[test]
fn sibling_containers_do_not_accumulate_depth() {
    // Ten thousand shallow arrays side by side: depth is per-branch,
    // not cumulative, so this must parse.
    let doc = format!("[{}[0]]", "[0],".repeat(10_000));
    assert!(parse_json(&doc).is_ok());
}

#[test]
fn the_seed_line_is_actually_valid() {
    let ev = validate_line(GOOD_LINE).expect("seed line must validate");
    assert_eq!((ev.seq, ev.ts, ev.kind), (0, 0, "cache_hit".to_string()));
    assert!(matches!(parse_json(GOOD_LINE), Ok(Json::Obj(_))));
}
