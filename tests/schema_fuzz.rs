//! Fuzz-style robustness tests for `dc_benches::schema`'s hand-rolled
//! JSON parser and event validators.
//!
//! The parser's job is reading JSONL artifacts off disk — files that
//! may be truncated mid-write, corrupted, or adversarial. The contract
//! under test: **every** malformed input comes back as `Err`, never a
//! panic, and never a stack overflow (which would abort the process,
//! not unwind). Inputs that happen to be well-formed may parse; what
//! is forbidden is any third outcome.

use dc_benches::schema::{parse_json, validate_line, validate_stream, Json};
use proptest::prelude::*;

/// A representative valid event line (a documented kind with all its
/// required fields), used as the seed for truncation/corruption tests.
const GOOD_LINE: &str =
    r#"{"seq":0,"ts":0,"kind":"cache_hit","fields":{"entry":"Sort","corun":1}}"#;

proptest! {
    /// Arbitrary bytes (lossily decoded): parse and validate must
    /// return, not panic. Whatever parses must also re-`get` safely.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(0u16..256, 0..300)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(doc) = parse_json(&text) {
            let _ = doc.get("seq");
        }
        let _ = validate_line(&text);
        let _ = validate_stream(&text);
    }

    /// Structural garbage — random soups of JSON punctuation, digits
    /// and quotes, the shapes most likely to walk deep into the
    /// parser's recursion — never panics either.
    #[test]
    fn json_shaped_garbage_never_panics(text in r#"[{}:,"0-9a-z. -]{0,120}"#) {
        if let Ok(doc) = parse_json(&text) {
            let _ = doc.get("kind");
        }
        let _ = validate_line(&text);
    }

    /// Every proper prefix of a valid event line is an error for both
    /// the parser and the validator: the closing brace comes last, so
    /// no truncation point leaves a complete document.
    #[test]
    fn truncated_lines_are_errors(cut in 0usize..71) {
        // 0..71 covers every proper prefix of GOOD_LINE (len 71).
        prop_assert_eq!(GOOD_LINE.len(), 71);
        let prefix = &GOOD_LINE[..cut];
        prop_assert!(parse_json(prefix).is_err(), "prefix {prefix:?} parsed");
        prop_assert!(validate_line(prefix).is_err());
    }

    /// Unbalanced nesting at any depth is an error, and past the
    /// parser's depth cap even *balanced* nesting is rejected rather
    /// than recursed into — arbitrarily deep input must never turn
    /// into a stack overflow.
    #[test]
    fn deep_nesting_is_an_error_not_an_overflow(depth in 1usize..200_000) {
        let open = "[".repeat(depth);
        prop_assert!(parse_json(&open).is_err());
        let balanced = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        match parse_json(&balanced) {
            Ok(_) => prop_assert!(depth <= 128, "depth {depth} should exceed the cap"),
            Err(e) => prop_assert!(
                depth > 128,
                "balanced depth {depth} under the cap was rejected: {e}"
            ),
        }
    }

    /// Duplicate keys are rejected wherever they appear — in the event
    /// envelope or nested inside `fields`.
    #[test]
    fn duplicate_keys_are_errors(key in "[a-z]{1,8}", a in 0u64..100, b in 0u64..100) {
        let doc = format!(r#"{{"{key}":{a},"{key}":{b}}}"#);
        let err = parse_json(&doc).unwrap_err();
        prop_assert!(err.contains("duplicate key"), "got: {err}");
        let nested = format!(
            r#"{{"seq":0,"ts":0,"kind":"cache_hit","fields":{{"entry":"S","corun":1,"{key}":{a},"{key}":{b}}}}}"#
        );
        prop_assert!(validate_line(&nested).is_err());
    }
}

#[test]
fn nesting_at_the_cap_parses_and_one_past_does_not() {
    // 127 array levels + the implicit depth of the value inside.
    let ok = format!("{}0{}", "[".repeat(128), "]".repeat(128));
    assert!(parse_json(&ok).is_ok());
    let too_deep = format!("{}0{}", "[".repeat(129), "]".repeat(129));
    let err = parse_json(&too_deep).unwrap_err();
    assert!(err.contains("nesting deeper"), "got: {err}");
}

#[test]
fn sibling_containers_do_not_accumulate_depth() {
    // Ten thousand shallow arrays side by side: depth is per-branch,
    // not cumulative, so this must parse.
    let doc = format!("[{}[0]]", "[0],".repeat(10_000));
    assert!(parse_json(&doc).is_ok());
}

#[test]
fn the_seed_line_is_actually_valid() {
    let ev = validate_line(GOOD_LINE).expect("seed line must validate");
    assert_eq!((ev.seq, ev.ts, ev.kind), (0, 0, "cache_hit".to_string()));
    assert!(matches!(parse_json(GOOD_LINE), Ok(Json::Obj(_))));
}
