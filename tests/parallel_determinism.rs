//! The parallel pipeline's defining guarantee: fanning the
//! characterization matrix across worker threads changes wall-clock,
//! never bits. Every metric row (and therefore every figure) must be
//! identical to the sequential, uncached reference path — for any seed
//! and any worker count.

use dc_cpu::{core::SimOptions, CpuConfig};
use dcbench::{BenchmarkId, Characterizer};

/// Tiny windows: 26 entries × 3 seeds must stay test-suite fast.
fn harness(seed: u64) -> Characterizer {
    Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(40_000, 20_000),
        seed,
    )
}

/// Force a real fan-out even on single-core runners: the pool must
/// still collect in entry order.
fn force_parallel() {
    std::env::set_var(dcbench::pool::JOBS_ENV, "4");
}

#[test]
fn parallel_run_all_is_bit_identical_to_sequential_for_three_seeds() {
    force_parallel();
    for seed in [2013u64, 0x5EED, 98_76_54_32_10] {
        let c = harness(seed);
        let sequential = c.run_all_sequential();
        dcbench::cache::clear(); // the parallel pass must simulate, not read
        let parallel = c.run_all();
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            // Metrics derives PartialEq over every f64 field: this is
            // bit-level equality of the derived rows, which in turn
            // only holds if the raw counter blocks matched exactly.
            assert_eq!(
                s, p,
                "seed {seed:#x}: {} diverged under parallelism",
                s.name
            );
        }
    }
}

#[test]
fn raw_counter_blocks_match_under_parallel_fanout() {
    force_parallel();
    let c = harness(0xD15EA5E);
    let ids = BenchmarkId::all();
    // Reference: simulate two probes uncached on this thread.
    let seq_sort = c.run_uncached(BenchmarkId::Sort);
    let seq_stream = c.run_uncached(BenchmarkId::HpccStream);
    dcbench::cache::clear();
    // Fan out the whole matrix, then read the same entries back.
    let all = c.run_all();
    let find = |name: &str| {
        all.iter()
            .find(|m| m.name == name)
            .expect("entry present")
            .clone()
    };
    assert_eq!(find("Sort"), seq_sort);
    assert_eq!(find("HPCC-STREAM"), seq_stream);
    assert_eq!(all.len(), ids.len());
}

#[test]
fn data_analysis_avg_is_stable_across_widths() {
    let c = harness(2013);
    std::env::set_var(dcbench::pool::JOBS_ENV, "1");
    dcbench::cache::clear();
    let narrow = c.run_data_analysis_with_avg();
    std::env::set_var(dcbench::pool::JOBS_ENV, "4");
    dcbench::cache::clear();
    let wide = c.run_data_analysis_with_avg();
    assert_eq!(narrow, wide);
}
