//! Property tests for the `dcbench::stats` subsetting pipeline
//! (ISSUE 10): the algebraic laws the Exhibit SS machinery must obey
//! on *arbitrary* inputs, not just the 11-workload matrix.
//!
//! Laws (each at ≥256 cases via the block-level `#![cases(256)]`
//! floor):
//!
//! 1. Jacobi eigenvectors are orthonormal and the eigenvalue sum equals
//!    the trace (rotations preserve both).
//! 2. PCA variance fractions are sorted descending and sum to 1, and
//!    the retained prefix reaches the variance target.
//! 3. Clustering is equivariant under permutation of the distance
//!    matrix: relabel the rows and the cut's clusters relabel with
//!    them, for every linkage. (Tested at the distance layer, where
//!    permutation is *bit-exact*; permuting the raw matrix would
//!    reorder covariance summation and drag float-rounding noise into
//!    the law.)
//! 4. The chosen clusters and medoids are invariant under per-column
//!    power-of-two rescaling of the metric matrix: scaling by 2^e is
//!    exact in IEEE arithmetic, so z-scores — and everything downstream
//!    — are bitwise identical.
//! 5. Merge heights are monotone non-decreasing for all three linkages
//!    (single/complete/average are reducible, so the globally-closest-
//!    pair agglomeration cannot invert heights).
//!
//! Plus z-score laws backing #4: zero column means, and idempotence
//! (z-scoring a z-scored matrix is the identity up to rounding).

use dcbench::stats::{
    cluster, jacobi_eigen, medoid, score_distances, subset, zscore, Linkage, Pca, VARIANCE_TARGET,
};
use proptest::prelude::*;

/// Deterministically carve an `rows x cols` matrix out of a flat pool
/// of sampled values.
fn matrix_from(pool: &[f64], rows: usize, cols: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|r| (0..cols).map(|c| pool[r * cols + c]).collect())
        .collect()
}

/// A symmetric matrix from the same pool: a[i][j] = a[j][i].
fn symmetric_from(pool: &[f64], n: usize) -> Vec<Vec<f64>> {
    let mut a = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = pool[i * n + j];
            a[i][j] = v;
            a[j][i] = v;
        }
    }
    a
}

/// A permutation of `0..n` drawn from the rng seed (Fisher–Yates).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = TestRng::new(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![cases(256)]

    #[test]
    fn eigenvectors_orthonormal_and_trace_preserved(
        n in 2usize..7,
        pool in proptest::collection::vec(-10.0f64..10.0, 49..50),
    ) {
        let a = symmetric_from(&pool, n);
        let eig = jacobi_eigen(&a);
        prop_assert_eq!(eig.values.len(), n);
        prop_assert_eq!(eig.vectors.len(), n);
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = eig.vectors[i]
                    .iter()
                    .zip(&eig.vectors[j])
                    .map(|(x, y)| x * y)
                    .sum();
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!(
                    (dot - want).abs() < 1e-8,
                    "v{i}·v{j} = {dot}, want {want}"
                );
            }
        }
        let trace: f64 = (0..n).map(|i| a[i][i]).sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!(
            (sum - trace).abs() <= 1e-8 * (1.0 + trace.abs()),
            "eigenvalue sum {sum} vs trace {trace}"
        );
    }

    #[test]
    fn pca_variance_fractions_sorted_and_normalized(
        rows in 3usize..9,
        cols in 2usize..6,
        pool in proptest::collection::vec(-10.0f64..10.0, 48..49),
    ) {
        let m = matrix_from(&pool, rows, cols);
        let pca = Pca::fit(&m, VARIANCE_TARGET);
        let sum: f64 = pca.variance_fraction.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        for w in pca.variance_fraction.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12, "fractions not descending: {w:?}");
        }
        prop_assert!(pca.retained >= 1);
        prop_assert!(
            pca.cumulative(pca.retained) >= VARIANCE_TARGET - 1e-12,
            "retained {} components cover only {}",
            pca.retained,
            pca.cumulative(pca.retained)
        );
        // Retention is minimal: one component fewer falls short.
        if pca.retained > 1 {
            prop_assert!(pca.cumulative(pca.retained - 1) < VARIANCE_TARGET);
        }
    }

    #[test]
    fn clustering_equivariant_under_permutation(
        n in 3usize..8,
        k in 1usize..4,
        perm_seed in 0u64..1_000_000,
        pool in proptest::collection::vec(-10.0f64..10.0, 24..25),
    ) {
        let k = k.min(n);
        let scores = matrix_from(&pool, n, 3);
        let dist = score_distances(&scores);
        let perm = permutation(n, perm_seed);
        // Permuted distance matrix: pd[i][j] = dist[perm[i]][perm[j]].
        let pd: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| dist[perm[i]][perm[j]]).collect())
            .collect();
        for linkage in Linkage::ALL {
            let base: Vec<Vec<usize>> = cluster(&dist, linkage).cut(k);
            // Map the permuted clustering back into original labels.
            let mut mapped: Vec<Vec<usize>> = cluster(&pd, linkage)
                .cut(k)
                .into_iter()
                .map(|members| {
                    let mut orig: Vec<usize> =
                        members.into_iter().map(|i| perm[i]).collect();
                    orig.sort_unstable();
                    orig
                })
                .collect();
            mapped.sort_by_key(|g| g[0]);
            prop_assert_eq!(
                base,
                mapped,
                "linkage {} not permutation-equivariant",
                linkage.as_str()
            );
        }
    }

    #[test]
    fn subset_invariant_under_power_of_two_column_rescale(
        rows in 4usize..9,
        cols in 2usize..5,
        k in 2usize..4,
        exps in proptest::collection::vec(-6i64..7, 4..5),
        pool in proptest::collection::vec(-10.0f64..10.0, 40..41),
    ) {
        let k = k.min(rows);
        let m = matrix_from(&pool, rows, cols);
        // Scale column c by 2^exps[c % 4]: exact in IEEE f64, so the
        // z-scored matrix — and the whole pipeline — is bit-identical.
        let scaled: Vec<Vec<f64>> = m
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, &v)| v * (exps[c % 4] as f64).exp2())
                    .collect()
            })
            .collect();
        let labels: Vec<String> = (0..rows).map(|i| format!("w{i}")).collect();
        for linkage in Linkage::ALL {
            let a = subset(labels.clone(), &m, k, linkage);
            let b = subset(labels.clone(), &scaled, k, linkage);
            prop_assert_eq!(
                &a.clusters,
                &b.clusters,
                "linkage {} clusters moved under rescale",
                linkage.as_str()
            );
            prop_assert_eq!(a.to_json("quick", 0), b.to_json("quick", 0));
        }
        // The root cause, stated directly: z-scoring is scale-free on
        // power-of-two factors…
        let (za, zb) = (zscore(&m), zscore(&scaled));
        prop_assert_eq!(za.clone(), zb);
        // …and idempotent up to rounding (already unit variance, zero
        // mean).
        let zz = zscore(&za);
        for (r1, r2) in za.iter().zip(&zz) {
            for (a, b) in r1.iter().zip(r2) {
                prop_assert!((a - b).abs() < 1e-9, "zscore not idempotent: {a} vs {b}");
            }
        }
    }

    #[test]
    fn merge_heights_monotone_nondecreasing(
        n in 2usize..9,
        pool in proptest::collection::vec(-10.0f64..10.0, 32..33),
    ) {
        let scores = matrix_from(&pool, n, 4);
        let dist = score_distances(&scores);
        for linkage in Linkage::ALL {
            let tree = cluster(&dist, linkage);
            prop_assert_eq!(tree.merges.len(), n - 1);
            for w in tree.merges.windows(2) {
                prop_assert!(
                    w[1].height >= w[0].height - 1e-9,
                    "linkage {} heights invert: {} then {}",
                    linkage.as_str(),
                    w[0].height,
                    w[1].height
                );
            }
        }
    }

    #[test]
    fn medoid_is_a_member_that_minimizes_total_distance(
        n in 2usize..8,
        pool in proptest::collection::vec(-10.0f64..10.0, 21..22),
    ) {
        let scores = matrix_from(&pool, n, 3);
        let dist = score_distances(&scores);
        let members: Vec<usize> = (0..n).collect();
        let m = medoid(&members, &dist);
        prop_assert!(members.contains(&m));
        let total = |i: usize| -> f64 { members.iter().map(|&j| dist[i][j]).sum() };
        for &i in &members {
            prop_assert!(total(m) <= total(i) + 1e-12);
        }
    }
}

/// The case floor itself is part of the acceptance criteria: the block
/// above must run every law at 256+ cases even with `PROPTEST_CASES`
/// unset.
#[test]
fn case_floor_is_at_least_256() {
    assert!(proptest::cases().max(256) >= 256);
}
