//! The memoizing result cache: a second characterization of the same
//! `(entry, config, window, seed)` key must do zero simulation work.
//!
//! Kept in its own integration binary so the process-wide
//! simulation-invocation counter is not perturbed by concurrent tests;
//! the tests inside this binary serialize on one mutex for the same
//! reason.

use dc_cpu::{core::SimOptions, CpuConfig};
use dc_obs::Recorder;
use dcbench::{cache, BenchmarkId, Characterizer};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn clear_resets_telemetry_counters_with_the_memo() {
    // Regression: clear() used to drop the memo table but leave the
    // hit/miss/sim counters running, so any assertion phrased against
    // absolute counter values depended on which tests ran earlier in
    // the binary. Counters are cache telemetry; they reset with it.
    let _guard = serial();
    let c = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(50_000, 20_000),
        0xC1EA_4000,
    );
    let _ = c.run(BenchmarkId::Sort); // miss
    let _ = c.run(BenchmarkId::Sort); // hit
    assert!(cache::sim_invocations() > 0);
    assert!(cache::cache_hits() > 0);
    cache::clear();
    assert_eq!(cache::sim_invocations(), 0, "clear() resets sim counter");
    assert_eq!(cache::cache_hits(), 0, "clear() resets hit counter");
    assert_eq!(cache::store_hits(), 0);
    assert_eq!(cache::store_misses(), 0);
    assert_eq!(cache::store_write_errors(), 0);
    assert_eq!(cache::len(), 0);
    // And the post-clear world behaves like a fresh process: the same
    // key is cold again, with counters counting from zero.
    let _ = c.run(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), 1);
    assert_eq!(cache::cache_hits(), 0);
    cache::clear();
}

#[test]
fn second_run_of_same_entry_does_zero_simulation_work() {
    let _guard = serial();
    let c = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(50_000, 20_000),
        0xCAFE_2013,
    );

    let before = cache::sim_invocations();
    let first = c.run(BenchmarkId::Sort);
    let after_first = cache::sim_invocations();
    assert_eq!(after_first - before, 1, "cold run simulates exactly once");

    let hits_before = cache::cache_hits();
    let second = c.run(BenchmarkId::Sort);
    assert_eq!(
        cache::sim_invocations(),
        after_first,
        "warm run must not simulate"
    );
    assert_eq!(cache::cache_hits(), hits_before + 1);
    assert_eq!(first, second);

    // The raw-counts and events views share the same cached block.
    let _ = c.raw_counts(BenchmarkId::Sort);
    let _ = c.run_with_events(BenchmarkId::Sort);
    assert_eq!(
        cache::sim_invocations(),
        after_first,
        "all read paths share one cached block"
    );

    // A different window is a different key: it simulates again.
    let longer = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(60_000, 20_000),
        0xCAFE_2013,
    );
    let _ = longer.run(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), after_first + 1);

    // So is a different machine config, even at the same window.
    let fatter_l3 = Characterizer::new(
        CpuConfig::westmere_e5645().with_l3_bytes(24 << 20),
        SimOptions::exact(50_000, 20_000),
        0xCAFE_2013,
    );
    let _ = fatter_l3.run(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), after_first + 2);

    // The uncached escape hatch always simulates (and counts).
    let _ = c.run_uncached(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), after_first + 3);

    // run_all over a warm matrix costs zero additional simulations.
    dcbench::cache::clear();
    let cold = cache::sim_invocations();
    let _ = c.run_all();
    let warmed = cache::sim_invocations();
    assert_eq!(warmed - cold, BenchmarkId::all().len() as u64);
    let _ = c.run_all();
    assert_eq!(
        cache::sim_invocations(),
        warmed,
        "warm matrix re-simulates nothing"
    );

    // The same telemetry, as dc-obs events: a recorder-attached harness
    // emits one cache_miss per real cached simulation, one cache_hit
    // per satisfied lookup and one sim_uncached per cache bypass —
    // event totals must mirror the lifetime counters' deltas exactly.
    let (recorder, ring) = Recorder::ring(1024);
    let observed = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(50_000, 20_000),
        0x0BCA_FE01, // a seed no other test uses: all-cold keys
    )
    .with_recorder(recorder);
    let sims_before = cache::sim_invocations();
    let hits_before = cache::cache_hits();
    let _ = observed.run(BenchmarkId::Sort); // miss
    let _ = observed.run(BenchmarkId::Sort); // hit
    let _ = observed.run(BenchmarkId::Grep); // miss
    let _ = observed.corun(BenchmarkId::Sort, 2); // miss (new width)
    let _ = observed.corun(BenchmarkId::Sort, 2); // hit
    let _ = observed.run_uncached(BenchmarkId::Sort); // uncached simulation
    let miss_events = ring.count_kind("cache_miss") as u64;
    let hit_events = ring.count_kind("cache_hit") as u64;
    let uncached_events = ring.count_kind("sim_uncached") as u64;
    assert_eq!(miss_events, 3);
    assert_eq!(hit_events, 2);
    assert_eq!(uncached_events, 1);
    assert_eq!(
        cache::sim_invocations() - sims_before,
        miss_events + uncached_events,
        "every simulation surfaced as a cache_miss or sim_uncached event"
    );
    assert_eq!(
        cache::cache_hits() - hits_before,
        hit_events,
        "every cache hit surfaced as a cache_hit event"
    );
    assert_eq!(ring.dropped(), 0, "ring was sized for the whole stream");
}

#[test]
fn registry_metrics_and_accessors_are_one_source_of_truth() {
    // Regression for the metrics promotion: the cache's telemetry
    // accessors used to be private atomics that could (in principle)
    // drift from whatever a metrics exporter reported. They now *are*
    // the `dcbench_*_total` counters in the process-wide registry, so
    // the accessor view, the registry snapshot and the event stream
    // must agree after any cold-then-warm sequence.
    let _guard = serial();
    cache::clear();
    let reg = dc_obs::metrics::global();
    let lookup = |name: &str| -> u64 {
        match reg.snapshot().get(name).map(|m| m.value.clone()) {
            Some(dc_obs::metrics::MetricValue::Counter(v)) => v,
            other => panic!("{name}: expected a counter, got {other:?}"),
        }
    };

    let (recorder, ring) = Recorder::ring(1024);
    let c = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(50_000, 20_000),
        0x0BCA_FE02, // a seed no other test uses: all-cold keys
    )
    .with_recorder(recorder);
    let _ = c.run(BenchmarkId::Sort); // cold: simulates
    let _ = c.run(BenchmarkId::Grep); // cold: simulates
    let _ = c.run(BenchmarkId::Sort); // warm: pure hit
    let _ = c.run(BenchmarkId::Grep); // warm: pure hit

    // Accessors == registry counters, name for name.
    assert_eq!(cache::sim_invocations(), lookup("dcbench_sim_runs_total"));
    assert_eq!(cache::cache_hits(), lookup("dcbench_cache_hits_total"));
    assert_eq!(cache::store_hits(), lookup("dcbench_store_hits_total"));
    assert_eq!(cache::store_misses(), lookup("dcbench_store_misses_total"));
    assert_eq!(
        cache::store_write_errors(),
        lookup("dcbench_store_write_errors_total")
    );
    // Registry counters == event stream (cleared above, so absolute).
    assert_eq!(lookup("dcbench_sim_runs_total"), 2);
    assert_eq!(lookup("dcbench_cache_hits_total"), 2);
    assert_eq!(ring.count_kind("cache_miss") as u64, 2);
    assert_eq!(ring.count_kind("cache_hit") as u64, 2);

    // clear() zeroes the registry values too — phase boundaries reset
    // every view at once.
    cache::clear();
    assert_eq!(lookup("dcbench_sim_runs_total"), 0);
    assert_eq!(lookup("dcbench_cache_hits_total"), 0);
    assert_eq!(cache::sim_invocations(), 0);
}
