//! The memoizing result cache: a second characterization of the same
//! `(entry, config, window, seed)` key must do zero simulation work.
//!
//! Kept in its own integration binary (one test) so the process-wide
//! simulation-invocation counter is not perturbed by concurrent tests.

use dc_cpu::{core::SimOptions, CpuConfig};
use dcbench::{cache, BenchmarkId, Characterizer};

#[test]
fn second_run_of_same_entry_does_zero_simulation_work() {
    let c = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions {
            max_ops: 50_000,
            warmup_ops: 20_000,
        },
        0xCAFE_2013,
    );

    let before = cache::sim_invocations();
    let first = c.run(BenchmarkId::Sort);
    let after_first = cache::sim_invocations();
    assert_eq!(after_first - before, 1, "cold run simulates exactly once");

    let hits_before = cache::cache_hits();
    let second = c.run(BenchmarkId::Sort);
    assert_eq!(
        cache::sim_invocations(),
        after_first,
        "warm run must not simulate"
    );
    assert_eq!(cache::cache_hits(), hits_before + 1);
    assert_eq!(first, second);

    // The raw-counts and events views share the same cached block.
    let _ = c.raw_counts(BenchmarkId::Sort);
    let _ = c.run_with_events(BenchmarkId::Sort);
    assert_eq!(
        cache::sim_invocations(),
        after_first,
        "all read paths share one cached block"
    );

    // A different window is a different key: it simulates again.
    let longer = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions {
            max_ops: 60_000,
            warmup_ops: 20_000,
        },
        0xCAFE_2013,
    );
    let _ = longer.run(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), after_first + 1);

    // So is a different machine config, even at the same window.
    let fatter_l3 = Characterizer::new(
        CpuConfig::westmere_e5645().with_l3_bytes(24 << 20),
        SimOptions {
            max_ops: 50_000,
            warmup_ops: 20_000,
        },
        0xCAFE_2013,
    );
    let _ = fatter_l3.run(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), after_first + 2);

    // The uncached escape hatch always simulates (and counts).
    let _ = c.run_uncached(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), after_first + 3);

    // run_all over a warm matrix costs zero additional simulations.
    dcbench::cache::clear();
    let cold = cache::sim_invocations();
    let _ = c.run_all();
    let warmed = cache::sim_invocations();
    assert_eq!(warmed - cold, BenchmarkId::all().len() as u64);
    let _ = c.run_all();
    assert_eq!(
        cache::sim_invocations(),
        warmed,
        "warm matrix re-simulates nothing"
    );
}
