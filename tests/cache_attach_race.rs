//! Regression test: `cache::attach_store` / `attach_from_env` must be
//! safe at **any** point in the process lifetime, including while
//! parallel workers are actively populating the memo table.
//!
//! The old implementation kept the memo table, the preloaded-key set,
//! and the store handle behind three separate locks, so an attach that
//! raced a miss could leave a measurement memoized but never written
//! through — silently cold in the next process. The fixed contract,
//! pinned here: once an attach has returned and all in-flight
//! simulations have finished, **every** memoized measurement is in the
//! store. `cache::persist_to` appends exactly the records the store
//! does not already hold, so "0 written" is the machine-checkable form
//! of that invariant.
//!
//! One `#[test]` drives all phases sequentially: the memo cache is
//! process-global, and concurrent tests would see each other's keys.

use dc_cpu::{core::SimOptions, CpuConfig};
use dc_obs::Recorder;
use dcbench::{cache, BenchmarkId, Characterizer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// A tiny-window harness with a per-thread seed so every lookup in this
/// test is a distinct cold key nothing else in the binary touches.
fn harness(seed: u64) -> Characterizer {
    Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(2_000, 0),
        0xA77A_C400_0000_0000 | seed,
    )
}

#[test]
fn attach_midway_through_parallel_population_loses_nothing() {
    let dir = std::env::temp_dir().join(format!("dc_attach_race_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("race.log");
    let quiet = Recorder::disabled();

    cache::clear();
    cache::detach_store();

    // Phase 1: workers populate the memo table while the main thread
    // attaches (and re-attaches) the store midway. Each worker computes
    // 8 distinct keys; the barrier maximizes the overlap between the
    // first insertions and the attach.
    const WORKERS: u64 = 4;
    const KEYS_PER_WORKER: u64 = 8;
    let start = Barrier::new(WORKERS as usize + 1);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let (start, _done) = (&start, &done);
            s.spawn(move || {
                start.wait();
                for k in 0..KEYS_PER_WORKER {
                    let c = harness((w << 8) | k);
                    c.raw_counts(BenchmarkId::Sort);
                }
            });
        }
        start.wait();
        // Attach while the workers are mid-flight, then detach and
        // attach again: every transition must be linearizable against
        // concurrent misses.
        cache::attach_store(&path, &quiet).expect("first attach");
        cache::detach_store();
        cache::attach_store(&path, &quiet).expect("re-attach");
        done.store(true, Ordering::Relaxed);
    });

    // Every measurement the workers memoized — whether it landed
    // before, during, or after the attaches — must already be durable:
    // persist_to appends only records the store lacks.
    let memoized = cache::len();
    assert_eq!(memoized as u64, WORKERS * KEYS_PER_WORKER);
    cache::detach_store();
    let missing = cache::persist_to(&path).expect("persist");
    assert_eq!(
        missing, 0,
        "{missing} of {memoized} memoized measurements were never written through"
    );

    // Phase 2: the catch-up path alone. A fresh process-half (cleared
    // memo, no store) computes first, attaches second — the attach
    // itself must make the pre-attach work durable and report it.
    cache::clear();
    let late_path = dir.join("late.log");
    let c = harness(0xFFFF);
    c.raw_counts(BenchmarkId::Grep);
    c.raw_counts(BenchmarkId::Sort);
    let report = cache::attach_store(&late_path, &quiet).expect("late attach");
    assert_eq!(report.loaded, 0, "fresh store has nothing to load");
    assert_eq!(
        report.caught_up, 2,
        "both pre-attach measurements caught up"
    );
    cache::detach_store();
    assert_eq!(cache::persist_to(&late_path).expect("persist"), 0);

    // Phase 3: attaching a populated store must prefer locally computed
    // blocks (identical by determinism), count them as loaded, and not
    // flip their hits to store_hits.
    cache::clear();
    let c = harness(0xFFFF);
    c.raw_counts(BenchmarkId::Grep); // recomputed locally
    let report = cache::attach_store(&late_path, &quiet).expect("warm attach");
    assert_eq!(report.loaded, 2);
    assert_eq!(report.caught_up, 0);
    let hits_before = cache::store_hits();
    c.raw_counts(BenchmarkId::Grep); // hit on the locally computed block
    assert_eq!(
        cache::store_hits(),
        hits_before,
        "a locally computed entry must stay a cache_hit after attach"
    );
    cache::detach_store();

    let _ = std::fs::remove_dir_all(&dir);
}
