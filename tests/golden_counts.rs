//! Golden-snapshot pin of the full `PerfCounts` blocks for three
//! benchmark entries at quick windows (seed 2013).
//!
//! These constants were captured from the single-core `Core::run` path
//! **before** the hierarchy-ownership refactor that split `Hierarchy`
//! into `PrivateHierarchy` + `SharedL3` and introduced the chip model.
//! They pin two guarantees at once:
//!
//! 1. no hierarchy/pipeline refactor may silently shift single-core
//!    numbers — any drift fails field-by-field with a readable diff;
//! 2. a 1-core [`dc_cpu::Chip`] is **bit-identical** to `Core::run`
//!    (the refactor's central acceptance criterion), checked by driving
//!    the chip path against the same constants.
//!
//! If a deliberate model change shifts these numbers, regenerate the
//! constants (`Characterizer::raw_counts` at `SimOptions::quick()`,
//! seed 2013) and say so loudly in the commit message.

use dc_cpu::{core::SimOptions, CpuConfig, PerfCounts};
use dcbench::{cache, BenchmarkId, Characterizer};

fn golden_harness() -> Characterizer {
    Characterizer::new(CpuConfig::westmere_e5645(), SimOptions::quick(), 2013)
}

const SORT: PerfCounts = PerfCounts {
    cycles: 539620,
    instructions: 199999,
    user_instructions: 152040,
    kernel_instructions: 47959,
    fetch_stall_cycles: 338832,
    rat_stall_cycles: 12748,
    rs_full_stall_cycles: 76892,
    rob_full_stall_cycles: 27678,
    load_buf_stall_cycles: 0,
    store_buf_stall_cycles: 248,
    l1i_accesses: 24702,
    l1i_misses: 5726,
    itlb_accesses: 24702,
    itlb_misses: 2959,
    itlb_walks: 61,
    l1d_accesses: 76573,
    l1d_misses: 42883,
    dtlb_accesses: 76573,
    dtlb_misses: 335,
    dtlb_walks: 130,
    l2_accesses: 48609,
    l2_misses: 9694,
    l3_accesses: 9694,
    l3_misses: 2266,
    prefetches: 19206,
    branches: 33333,
    branch_mispredicts: 2137,
    loads: 50083,
    stores: 26490,
};

const MEDIA_STREAMING: PerfCounts = PerfCounts {
    cycles: 574726,
    instructions: 199998,
    user_instructions: 99704,
    kernel_instructions: 100294,
    fetch_stall_cycles: 313676,
    rat_stall_cycles: 139668,
    rs_full_stall_cycles: 0,
    rob_full_stall_cycles: 24005,
    load_buf_stall_cycles: 0,
    store_buf_stall_cycles: 26,
    l1i_accesses: 24718,
    l1i_misses: 7036,
    itlb_accesses: 24718,
    itlb_misses: 2287,
    itlb_walks: 117,
    l1d_accesses: 70133,
    l1d_misses: 47025,
    dtlb_accesses: 70133,
    dtlb_misses: 591,
    dtlb_walks: 235,
    l2_accesses: 54061,
    l2_misses: 13804,
    l3_accesses: 13804,
    l3_misses: 3315,
    prefetches: 19426,
    branches: 33325,
    branch_mispredicts: 3013,
    loads: 48516,
    stores: 21617,
};

const HPCC_STREAM: PerfCounts = PerfCounts {
    cycles: 415437,
    instructions: 200001,
    user_instructions: 200001,
    kernel_instructions: 0,
    fetch_stall_cycles: 867,
    rat_stall_cycles: 0,
    rs_full_stall_cycles: 0,
    rob_full_stall_cycles: 309568,
    load_buf_stall_cycles: 0,
    store_buf_stall_cycles: 31787,
    l1i_accesses: 14116,
    l1i_misses: 3,
    itlb_accesses: 14116,
    itlb_misses: 0,
    itlb_walks: 0,
    l1d_accesses: 92059,
    l1d_misses: 11508,
    dtlb_accesses: 92059,
    dtlb_misses: 180,
    dtlb_walks: 180,
    l2_accesses: 11511,
    l2_misses: 4937,
    l3_accesses: 4937,
    l3_misses: 4937,
    prefetches: 15870,
    branches: 20000,
    branch_mispredicts: 23,
    loads: 59669,
    stores: 32390,
};

const GOLDEN: [(BenchmarkId, PerfCounts); 3] = [
    (BenchmarkId::Sort, SORT),
    (BenchmarkId::MediaStreaming, MEDIA_STREAMING),
    (BenchmarkId::HpccStream, HPCC_STREAM),
];

/// One test drives both paths so the shared memoization cache cannot
/// satisfy the second path from the first one's fill: the Core path
/// simulates, the cache is cleared, then the 1-core chip path simulates
/// the same keys from scratch against the same constants.
#[test]
fn counters_match_pre_refactor_golden_values() {
    let c = golden_harness();
    for (id, want) in GOLDEN {
        assert_eq!(
            c.raw_counts(id),
            want,
            "single-core counters drifted for {id:?}"
        );
    }
    cache::clear();
    for (id, want) in GOLDEN {
        let co = c.corun_counts(id, 1);
        assert_eq!(co.len(), 1);
        assert_eq!(
            co[0], want,
            "1-core chip diverged from Core::run for {id:?}"
        );
    }
}

/// Interval sampling against the same golden constants: for each pinned
/// entry, the sampled aggregate (recorder disabled — the default) must
/// equal the pre-PR block bit-for-bit, and the per-interval counter
/// deltas must sum back to it **exactly, field for field**. Sampling is
/// observation-only; these constants prove it against real workload
/// traces, not toy streams.
#[test]
fn sampled_deltas_sum_to_the_golden_aggregates() {
    let c = golden_harness();
    for every_cycles in [33_000, 100_000] {
        for (id, want) in GOLDEN {
            let run = c.raw_sampled(id, every_cycles);
            assert_eq!(
                run.aggregate, want,
                "sampling perturbed counters for {id:?} at interval {every_cycles}"
            );
            assert_eq!(
                run.summed(),
                want,
                "interval deltas do not telescope for {id:?} at interval {every_cycles}"
            );
            assert!(
                run.samples.len() > 1,
                "window should span several intervals for {id:?}"
            );
        }
    }
}
