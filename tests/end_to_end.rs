//! End-to-end integration: profile → trace → pipeline → PMU → report,
//! across crate boundaries.

use dc_cpu::{core::SimOptions, CpuConfig};
use dc_datagen::Scale;
use dcbench::{report, BenchmarkId, Characterizer};

#[test]
fn full_pipeline_produces_all_exhibits() {
    let bench = Characterizer::quick();
    let scale = Scale::bytes(32 << 10);
    let fig3 = report::figure3(&bench);
    assert_eq!(fig3.rows.len(), 27);
    let fig2 = report::figure2(scale);
    assert_eq!(fig2.rows.len(), 11);
    let fig5 = report::figure5(scale);
    assert_eq!(fig5.rows.len(), 11);
    assert!(!report::table2().is_empty());
}

#[test]
fn pmu_view_matches_metrics_for_every_entry() {
    let bench = Characterizer::quick();
    for &id in BenchmarkId::all() {
        let (m, events) = bench.run_with_events(id);
        let inst = events
            .iter()
            .find(|(e, _)| *e == dc_perfmon::PerfEvent::InstructionsRetired)
            .expect("instructions counted")
            .1;
        assert_eq!(inst, m.instructions, "{id}");
        assert!(m.ipc > 0.0 && m.ipc < 4.0, "{id}: ipc {:.2}", m.ipc);
    }
}

#[test]
fn ablation_llc_capacity_hurts_data_analysis() {
    // The paper's LLC recommendation: DA working sets are L3-resident,
    // so shrinking the LLC must increase memory traffic.
    let full = Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(400_000, 120_000),
        7,
    );
    let small = Characterizer::new(
        CpuConfig::westmere_e5645().with_l3_bytes(1 << 20),
        SimOptions::exact(400_000, 120_000),
        7,
    );
    let big = full.run(BenchmarkId::PageRank);
    let tiny = small.run(BenchmarkId::PageRank);
    assert!(
        tiny.l3_hit_ratio < big.l3_hit_ratio,
        "1 MiB LLC: {:.2} vs 12 MiB: {:.2}",
        tiny.l3_hit_ratio,
        big.l3_hit_ratio
    );
    assert!(tiny.ipc <= big.ipc + 0.02);
}

#[test]
fn ablation_simpler_predictor_is_enough_for_da() {
    // Paper: "A simpler branch predictor may be preferred" for DA. A
    // short-history predictor should cost DA little IPC relative to
    // what it costs SPECINT.
    let opts = SimOptions::exact(300_000, 500_000);
    let westmere = Characterizer::new(CpuConfig::westmere_e5645(), opts, 2013);
    let simple = Characterizer::new(
        CpuConfig::westmere_e5645().with_predictor_bits(4),
        opts,
        2013,
    );
    let da_full = westmere.run(BenchmarkId::WordCount);
    let da_simple = simple.run(BenchmarkId::WordCount);
    let da_loss = (da_full.ipc - da_simple.ipc) / da_full.ipc;
    let int_full = westmere.run(BenchmarkId::SpecInt);
    let int_simple = simple.run(BenchmarkId::SpecInt);
    let int_loss = (int_full.ipc - int_simple.ipc) / int_full.ipc;
    assert!(
        da_loss < 0.15,
        "short-history predictor costs DA {:.1}% IPC",
        da_loss * 100.0
    );
    assert!(
        da_loss < int_loss + 0.02,
        "DA tolerates the simpler predictor better than SPECINT: {:.1}% vs {:.1}%",
        da_loss * 100.0,
        int_loss * 100.0
    );
}
