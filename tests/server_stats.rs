//! The `stats` determinism contract, end to end: a daemon driven by a
//! fake clock produces **byte-identical** stats snapshots across two
//! full replays of the same session — concurrent submissions, real
//! simulations, latency histograms and all.
//!
//! The replay script leans on the injected [`FakeClock`]: time only
//! moves when the test moves it, and the test only moves it at points
//! it has *observed* to be deterministic (via the injected registry's
//! own histogram counts), so every queue-wait and service-time
//! observation is an exact, replayable integer.

use dc_obs::metrics::{FakeClock, Registry};
use dc_server::server::{Server, ServerConfig};
use std::io::BufReader;
use std::sync::Arc;

fn session(server: &Server, input: &str) -> Vec<String> {
    let mut reader = BufReader::new(input.as_bytes());
    let mut out: Vec<u8> = Vec::new();
    server.serve_connection(&mut reader, &mut out);
    String::from_utf8(out)
        .expect("responses are utf-8")
        .lines()
        .map(str::to_string)
        .collect()
}

fn spin_until(mut ready: impl FnMut() -> bool, what: &str) {
    for _ in 0..200_000 {
        if ready() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    panic!("timed out waiting for {what}");
}

/// One full replay: boot a daemon on a fresh registry and fake clock,
/// run the scripted session, return the raw bytes of the final stats
/// response. `seed` varies per replay so both replays really simulate
/// (the process-wide result cache would otherwise turn replay two into
/// a no-op and change its wall-clock shape — while proving, by being
/// excluded, that the *injected* registry sees none of it).
fn replay(seed: u64) -> String {
    let registry = Arc::new(Registry::new());
    let clock = FakeClock::at(100);
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 8,
        registry: Arc::clone(&registry),
        clock: Arc::new(clock.clone()),
        ..ServerConfig::default()
    });

    // Two submissions back to back on one connection: the single
    // executor pops L (queue wait 0) and is busy for hundreds of
    // milliseconds of real simulation; M sits in the queue. One junk
    // verb exercises the error-code family.
    let lines = session(
        &server,
        &format!(
            "{{\"id\":1,\"verb\":\"submit\",\"job\":{{\"entries\":\"data_analysis\",\"seed\":{seed}}}}}\n\
             {{\"id\":2,\"verb\":\"submit\",\"job\":{{\"entries\":[\"Sort\"],\"seed\":{seed}}}}}\n\
             {{\"id\":3,\"verb\":\"nope\"}}\n"
        ),
    );
    assert!(lines[0].contains("\"ok\":true"), "submit L: {lines:?}");
    assert!(lines[1].contains("\"ok\":true"), "submit M: {lines:?}");
    assert!(lines[2].contains("\"unknown_verb\""), "junk: {lines:?}");

    // Advance time only once L is observably started (queue-wait
    // histogram count hits 1) — L is mid-simulation, M still queued, so
    // the jump lands entirely inside L's service and M's wait.
    let queue_wait = registry.histogram("dc_server_queue_wait_us", &[]);
    let service_time = registry.histogram("dc_server_service_time_us", &[]);
    spin_until(|| queue_wait.count() == 1, "executor to pop L");
    clock.advance(250);
    spin_until(|| service_time.count() == 2, "both jobs to finish");

    let stats = session(&server, "{\"id\":4,\"verb\":\"stats\"}\n");
    server.begin_shutdown();
    server.wait();
    assert_eq!(stats.len(), 1);
    stats.into_iter().next().expect("one stats line")
}

#[test]
fn stats_snapshot_is_byte_identical_across_replays() {
    let first = replay(0x57A7_0001);
    let second = replay(0x57A7_0002);
    assert_eq!(first, second, "replays must agree byte for byte");

    // The frozen-time latency split is exact: L waited 0 and served
    // 250 µs (the advance landed inside its run); M waited 250 and
    // served 0. 250 lands in the log2 bucket [128, 255].
    assert!(
        first.contains(
            "{\"name\":\"dc_server_queue_wait_us\",\"labels\":{},\"type\":\"histogram\",\
         \"count\":2,\"sum\":250,\"min\":0,\"max\":250,\"p50\":0,\"p90\":250,\"p99\":250,\
         \"buckets\":[[0,1],[255,1]]}"
        ),
        "queue-wait histogram: {first}"
    );
    assert!(
        first.contains(
            "{\"name\":\"dc_server_service_time_us\",\"labels\":{},\"type\":\"histogram\",\
         \"count\":2,\"sum\":250,\"min\":0,\"max\":250,\"p50\":0,\"p90\":250,\"p99\":250,\
         \"buckets\":[[0,1],[255,1]]}"
        ),
        "service-time histogram: {first}"
    );
    // Request and error counters, pre-registered families included.
    assert!(first.contains(
        "{\"name\":\"dc_server_requests_total\",\"labels\":{\"verb\":\"submit\"},\"type\":\"counter\",\"value\":2}"
    ));
    assert!(first.contains(
        "{\"name\":\"dc_server_requests_total\",\"labels\":{\"verb\":\"stats\"},\"type\":\"counter\",\"value\":1}"
    ));
    assert!(first.contains(
        "{\"name\":\"dc_server_requests_total\",\"labels\":{\"verb\":\"cancel\"},\"type\":\"counter\",\"value\":0}"
    ));
    assert!(first.contains(
        "{\"name\":\"dc_server_errors_total\",\"labels\":{\"code\":\"unknown_verb\"},\"type\":\"counter\",\"value\":1}"
    ));
    // Process-global families (cache, pool, simulator) stay out of the
    // injected registry.
    assert!(
        !first.contains("dcbench_"),
        "global metrics leaked: {first}"
    );
    assert!(
        !first.contains("dc_pool_"),
        "global metrics leaked: {first}"
    );
}
