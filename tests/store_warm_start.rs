//! End-to-end warm start through the persistent store (ISSUE 6
//! acceptance): a second run against a populated `DCBENCH_STORE` does
//! zero simulator invocations, serves identical raw counts, and
//! surfaces the store telemetry; damaged logs recover (truncate /
//! quarantine) instead of serving corrupt counter blocks.
//!
//! Every test here mutates the process-wide cache, its telemetry
//! counters, and the attached store handle, so the whole binary is
//! serialized through one mutex — the tests are about global state by
//! nature.

use dc_cpu::{core::SimOptions, CpuConfig, PerfCounts};
use dc_obs::Recorder;
use dc_store::{counts_from_array, Record, Store, StoreKey, COUNTER_FIELDS};
use dcbench::{cache, sweep, BenchmarkId, Characterizer};
use std::path::PathBuf;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Fresh global state: no attached store, empty memo, zeroed counters.
fn reset() {
    cache::detach_store();
    cache::clear();
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-store-warm-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("store.log")
}

fn harness(recorder: Recorder) -> Characterizer {
    Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(50_000, 20_000),
        0x57_0123,
    )
    .with_recorder(recorder)
}

#[test]
fn warm_start_does_zero_simulations_and_serves_identical_counts() {
    let _guard = serial();
    let path = tmp("zero-sims");
    reset();

    // Cold run against an empty store: every lookup simulates and
    // writes through.
    let (rec, ring) = Recorder::ring(256);
    let report = cache::attach_store(&path, &rec).expect("attach");
    assert_eq!(report.loaded, 0, "fresh store starts empty");
    let c = harness(rec.clone());
    let cold_sort = c.raw_counts(BenchmarkId::Sort);
    let cold_grep = c.raw_counts(BenchmarkId::Grep);
    let cold_corun = c.corun(BenchmarkId::Sort, 2);
    assert_eq!(cache::sim_invocations(), 3, "three cold keys, three sims");
    assert_eq!(cache::store_misses(), 3, "each miss wrote through");
    assert_eq!(cache::store_write_errors(), 0);
    assert_eq!(ring.count_kind("store_miss"), 3);
    assert_eq!(ring.count_kind("store_hit"), 0);

    // New "process": drop the handle and the whole in-memory cache.
    reset();
    assert_eq!(cache::sim_invocations(), 0, "clear() resets telemetry");

    // Warm run: the store alone must satisfy everything.
    let (rec, ring) = Recorder::ring(256);
    let report = cache::attach_store(&path, &rec).expect("re-attach");
    assert_eq!(report.loaded, 3, "all three records recovered");
    assert_eq!(report.corrupt_skipped, 0);
    assert_eq!(report.truncated_bytes, 0);
    let c = harness(rec.clone());
    let warm_sort = c.raw_counts(BenchmarkId::Sort);
    let warm_grep = c.raw_counts(BenchmarkId::Grep);
    let warm_corun = c.corun(BenchmarkId::Sort, 2);
    assert_eq!(cache::sim_invocations(), 0, "warm run simulates nothing");
    assert_eq!(cache::store_hits(), 3, "every lookup was a store hit");
    assert_eq!(ring.count_kind("store_hit"), 3);
    assert_eq!(ring.count_kind("cache_miss"), 0);
    assert_eq!(warm_sort, cold_sort, "store round-trips counts exactly");
    assert_eq!(warm_grep, cold_grep);
    assert_eq!(warm_corun, cold_corun);
    reset();
}

#[test]
fn sweep_against_populated_store_is_warm_and_identical() {
    let _guard = serial();
    let path = tmp("sweep");
    reset();

    let ids = [BenchmarkId::Sort, BenchmarkId::Grep];
    let axes = [sweep::SweepAxis::l3_bytes(vec![6 << 20, 12 << 20])];

    // Cold sweep populates the store.
    let rec = Recorder::disabled();
    cache::attach_store(&path, &rec).expect("attach");
    let cold = sweep::run(&harness(rec.clone()), &ids, &axes).expect("cold sweep");
    let cold_sims = cache::sim_invocations();
    assert!(cold_sims > 0, "cold sweep must simulate");

    // Warm sweep in a "new process".
    reset();
    let rec = Recorder::disabled();
    let report = cache::attach_store(&path, &rec).expect("re-attach");
    assert_eq!(report.loaded as u64, cold_sims, "one record per cold sim");
    let warm = sweep::run(&harness(rec), &ids, &axes).expect("warm sweep");
    assert_eq!(
        cache::sim_invocations(),
        0,
        "sweep against a populated store performs zero simulator invocations"
    );
    assert!(cache::store_hits() > 0);

    // Identical grids, counter-block for counter-block.
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.values, w.values);
        for (cc, wc) in c.curves.iter().zip(&w.curves) {
            assert_eq!(cc.id, wc.id);
            assert_eq!(cc.counts, wc.counts, "warm sweep serves identical counts");
        }
    }
    reset();
}

#[test]
fn attach_from_env_honors_dcbench_store() {
    let _guard = serial();
    let path = tmp("env");
    reset();

    std::env::remove_var("DCBENCH_STORE");
    let rec = Recorder::disabled();
    assert!(
        cache::attach_from_env(&rec).expect("attach").is_none(),
        "unset variable attaches nothing"
    );
    std::env::set_var("DCBENCH_STORE", &path);
    let report = cache::attach_from_env(&rec).expect("attach");
    assert!(report.is_some(), "set variable attaches the store");
    std::env::remove_var("DCBENCH_STORE");
    assert!(path.exists(), "attach created the log");
    reset();
}

#[test]
fn torn_tail_is_recovered_and_warm_start_still_works() {
    let _guard = serial();
    let path = tmp("torn");
    reset();

    let rec = Recorder::disabled();
    cache::attach_store(&path, &rec).expect("attach");
    let cold = harness(rec).raw_counts(BenchmarkId::Sort);
    reset();

    // Crash mid-append: a torn, unterminated frame at the tail.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open raw");
    f.write_all(b"r 240 0123abcd {\"entry\":\"Grep\",\"cfg")
        .expect("tear");
    drop(f);

    let (rec, ring) = Recorder::ring(64);
    let report = cache::attach_store(&path, &rec).expect("recover");
    assert!(report.truncated_bytes > 0, "torn tail detected");
    assert_eq!(report.loaded, 1, "the complete record survives");
    assert_eq!(ring.count_kind("store_truncated"), 1);
    let warm = harness(rec).raw_counts(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), 0);
    assert_eq!(warm, cold);
    reset();
}

#[test]
fn corrupt_record_is_quarantined_never_served_then_rewritten() {
    let _guard = serial();
    let path = tmp("quarantine");
    reset();

    let rec = Recorder::disabled();
    cache::attach_store(&path, &rec).expect("attach");
    let cold = harness(rec).raw_counts(BenchmarkId::Sort);
    reset();

    // Bit rot inside the record line (the second line of the file).
    let mut bytes = std::fs::read(&path).expect("read");
    let record_start = bytes.iter().position(|&b| b == b'\n').expect("header end") + 1;
    let target = record_start + (bytes.len() - record_start) / 2;
    bytes[target] ^= 0x20;
    std::fs::write(&path, &bytes).expect("write corrupted");

    let (rec, ring) = Recorder::ring(64);
    let report = cache::attach_store(&path, &rec).expect("attach damaged");
    assert_eq!(report.corrupt_skipped, 1, "damaged record quarantined");
    assert_eq!(report.loaded, 0, "nothing served from a corrupt frame");
    assert_eq!(ring.count_kind("store_corrupt_skipped"), 1);

    // The key re-simulates (never serving corrupt counts) and the
    // write-through repopulates the store for the next process.
    let resim = harness(rec).raw_counts(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), 1, "quarantined key re-simulates");
    assert_eq!(resim, cold, "re-simulation reproduces the block exactly");
    reset();

    let rec = Recorder::disabled();
    let report = cache::attach_store(&path, &rec).expect("final attach");
    assert_eq!(report.loaded, 1, "write-through healed the store");
    assert_eq!(cache::store_hits(), 0);
    let warm = harness(rec).raw_counts(BenchmarkId::Sort);
    assert_eq!(cache::sim_invocations(), 0);
    assert_eq!(warm, cold);
    reset();
}

#[test]
fn compaction_drops_damage_and_emits_store_compacted() {
    let _guard = serial();
    let path = tmp("compact");
    reset();

    // Seed a log with a superseded duplicate via the store API
    // directly (a key no characterization uses).
    let mut a = [7u64; COUNTER_FIELDS];
    let key = StoreKey {
        entry: "Sort".to_string(),
        cfg_hash: 42,
        max_ops: 1,
        warmup_ops: 0,
        seed: 0xD0_0D,
        corun: 1,
        sample: None,
    };
    let (mut store, _) = Store::open(&path).expect("open");
    store
        .append(&Record {
            key: key.clone(),
            counts: vec![counts_from_array(&a)],
        })
        .expect("append v1");
    a[0] = 8;
    store
        .append(&Record {
            key,
            counts: vec![counts_from_array(&a)],
        })
        .expect("append v2");
    drop(store);

    let (rec, ring) = Recorder::ring(64);
    let report = cache::attach_store(&path, &rec).expect("attach");
    assert_eq!(report.superseded, 1);
    assert_eq!(report.loaded, 1, "last writer wins");
    let stats = cache::compact_store(&rec)
        .expect("compact")
        .expect("store attached");
    assert_eq!(stats.live, 1);
    assert_eq!(stats.dropped, 1, "superseded frame dropped");
    assert_eq!(ring.count_kind("store_compacted"), 1);
    assert!(
        cache::compact_store(&Recorder::disabled()).is_ok(),
        "compacting twice is fine"
    );
    reset();
    assert!(
        cache::compact_store(&Recorder::disabled())
            .expect("no store")
            .is_none(),
        "no attached store, no compaction"
    );
}

#[test]
fn persist_to_and_load_from_round_trip_without_write_through() {
    let _guard = serial();
    let path = tmp("persist");
    reset();

    // Cold run with NO store attached.
    let rec = Recorder::disabled();
    let c = harness(rec.clone());
    let cold_sort = c.raw_counts(BenchmarkId::Sort);
    let cold_grep = c.raw_counts(BenchmarkId::Grep);
    assert_eq!(cache::store_misses(), 0, "no store, no write-through");

    // Export the memo, then prove the export is complete and
    // idempotent.
    assert_eq!(cache::persist_to(&path).expect("persist"), 2);
    assert_eq!(
        cache::persist_to(&path).expect("re-persist"),
        0,
        "second export writes nothing new"
    );

    // Read-only warm start.
    reset();
    let report = cache::load_from(&path, &rec).expect("load");
    assert_eq!(report.loaded, 2);
    let before = std::fs::read(&path).expect("read");
    let c = harness(rec);
    assert_eq!(c.raw_counts(BenchmarkId::Sort), cold_sort);
    assert_eq!(c.raw_counts(BenchmarkId::Grep), cold_grep);
    assert_eq!(cache::sim_invocations(), 0);
    assert_eq!(cache::store_hits(), 2);
    // A load_from (unlike attach_store) never writes: new misses stay
    // process-local.
    let _ = c.raw_counts(BenchmarkId::WordCount);
    assert_eq!(cache::store_misses(), 0);
    let after = std::fs::read(&path).expect("read");
    assert_eq!(before, after, "read-only load leaves the file untouched");
    reset();
}

#[test]
fn unknown_entries_in_a_foreign_store_are_skipped_not_fatal() {
    let _guard = serial();
    let path = tmp("foreign");
    reset();

    let (mut store, _) = Store::open(&path).expect("open");
    store
        .append(&Record {
            key: StoreKey {
                entry: "Quantum Frobnicator".to_string(),
                cfg_hash: 1,
                max_ops: 1,
                warmup_ops: 0,
                seed: 1,
                corun: 1,
                sample: None,
            },
            counts: vec![PerfCounts::default()],
        })
        .expect("append foreign");
    drop(store);

    let report = cache::attach_store(&path, &Recorder::disabled()).expect("attach");
    assert_eq!(report.unknown_entries, 1);
    assert_eq!(report.loaded, 0);
    reset();
}
