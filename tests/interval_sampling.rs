//! Interval PMU sampling through the characterizer: observation-only
//! sampling, telescoping deltas, deterministic event streams, and the
//! Exhibit PH pipeline end to end — plus the SMARTS sampled-mode
//! conservation laws (what the extrapolation may and may not move) and
//! the sampling-off bit-identity pin against the pre-refactor goldens.

use dc_cpu::{core::SimOptions, CpuConfig};
use dc_obs::{Recorder, SharedBuf, Value};
use dcbench::{report, BenchmarkId, Characterizer};
use proptest::prelude::*;

/// Small windows so the full 11-workload exhibit stays fast in CI.
fn harness() -> Characterizer {
    Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(60_000, 20_000),
        0x5A3D_2013,
    )
}

const EVERY: u64 = 20_000;

#[test]
fn sampling_with_recorder_disabled_changes_no_counters() {
    let c = harness();
    for id in [BenchmarkId::Sort, BenchmarkId::Grep, BenchmarkId::KMeans] {
        let run = c.raw_sampled(id, EVERY);
        // The sampled aggregate equals the unsampled simulation of the
        // same (entry, config, window, seed) bit-for-bit…
        assert_eq!(run.aggregate, c.raw_counts(id), "{id:?} aggregate");
        // …and the interval deltas telescope back to it exactly.
        assert_eq!(run.summed(), run.aggregate, "{id:?} telescoping");
    }
}

#[test]
fn sampled_metrics_mirror_the_raw_series() {
    let c = harness();
    let raw = c.raw_sampled(BenchmarkId::Sort, EVERY);
    let derived = c.run_sampled(BenchmarkId::Sort, EVERY);
    assert_eq!(derived.name, BenchmarkId::Sort.name());
    assert_eq!(derived.every_cycles, EVERY);
    assert_eq!(derived.aggregate, raw.aggregate);
    assert_eq!(derived.intervals.len(), raw.samples.len());
    for (iv, s) in derived.intervals.iter().zip(&raw.samples) {
        assert_eq!(iv.start_cycle, s.start_cycle);
        assert_eq!(iv.end_cycle, s.end_cycle);
        assert_eq!(iv.instructions, s.counts.instructions);
        assert!((iv.ipc - s.counts.ipc()).abs() < 1e-12);
        assert!((iv.l2_mpki - s.counts.l2_mpki()).abs() < 1e-12);
    }
}

#[test]
fn phase_exhibit_covers_all_eleven_data_analysis_workloads() {
    let c = harness();
    let figures = report::phase_exhibit(&c, EVERY);
    let ids = BenchmarkId::data_analysis();
    assert_eq!(figures.len(), ids.len());
    assert_eq!(figures.len(), 11, "the paper's eleven DA workloads");
    for (figure, id) in figures.iter().zip(ids) {
        assert_eq!(figure.id, "Exhibit PH");
        assert!(
            figure.title.contains(id.name()),
            "figure order follows workload order: {} vs {:?}",
            figure.title,
            id
        );
        assert_eq!(figure.columns.len(), 5);
        assert!(!figure.rows.is_empty());
        let rendered = figure.render();
        assert!(rendered.contains("Exhibit PH"));
    }
}

#[test]
fn recorder_captures_interval_events_in_workload_order() {
    let (recorder, ring) = Recorder::ring(1 << 14);
    let c = harness().with_recorder(recorder);
    let figures = report::phase_exhibit(&c, EVERY);
    let events = ring.snapshot();

    let summaries: Vec<String> = events
        .iter()
        .filter(|e| e.kind == "workload_sampled")
        .filter_map(|e| e.field("workload").and_then(Value::as_str))
        .map(str::to_owned)
        .collect();
    let expected: Vec<String> = BenchmarkId::data_analysis()
        .iter()
        .map(|id| id.name().to_owned())
        .collect();
    assert_eq!(summaries, expected, "one summary per workload, in order");

    let interval_events = events
        .iter()
        .filter(|e| e.kind == "interval_sample")
        .count();
    let figure_rows: usize = figures.iter().map(|f| f.rows.len()).sum();
    assert_eq!(interval_events, figure_rows, "one event per exhibit row");

    // Events within a workload are in interval order, timestamped at
    // the interval close (simulated cycles).
    let sort_ts: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.kind == "interval_sample"
                && e.field("workload").and_then(Value::as_str) == Some(BenchmarkId::Sort.name())
        })
        .map(|e| e.ts)
        .collect();
    assert!(!sort_ts.is_empty());
    assert!(sort_ts.windows(2).all(|w| w[0] < w[1]));
}

/// Relative error of a derived metric, with a small absolute floor so
/// near-zero denominators don't manufacture huge ratios.
fn rel_err(sampled: f64, exact: f64) -> f64 {
    (sampled - exact).abs() / exact.abs().max(0.1)
}

/// SMARTS sampled-mode conservation laws across **all eleven**
/// data-analysis workloads at the quick window:
///
/// * instructions agree with the exact run to within one retire group
///   (both modes overshoot `max_ops` by at most `retire_width - 1`);
/// * loads, stores and branches are counted in both the detailed and
///   the fast-forward phases, so they conserve tightly — the residue is
///   the in-flight overhang at burst boundaries, not an extrapolation;
/// * L2/L3 MPKI are within the documented 5% bound — misses are event
///   counts over the (identical) access stream, not extrapolations;
/// * derived IPC is within 8% here: cycle counters *are* extrapolated,
///   and their error is sampling variance against workload phase
///   structure, shrinking with the number of detailed bursts. The
///   quick window fits only ~5 bursts of the default plan; the
///   `sampled-validation` CI job enforces the tight documented bounds
///   (≤ 3% IPC, ≤ 5% MPKI) at the full window, which fits ~12.
#[test]
fn smarts_conservation_laws_hold_for_all_eleven_da_workloads() {
    let exact = Characterizer::quick();
    let sampled = Characterizer::quick_sampled();
    for &id in BenchmarkId::data_analysis() {
        let e = exact.raw_counts(id);
        let s = sampled.raw_counts(id);
        assert!(
            e.instructions.abs_diff(s.instructions) <= 8,
            "{id:?}: instructions {} (exact) vs {} (sampled)",
            e.instructions,
            s.instructions
        );
        for (name, ev, sv) in [
            ("loads", e.loads, s.loads),
            ("stores", e.stores, s.stores),
            ("branches", e.branches, s.branches),
        ] {
            let err = rel_err(sv as f64, ev as f64);
            assert!(
                err <= 0.002,
                "{id:?}: {name} drifted {err:.4} ({ev} exact vs {sv} sampled)"
            );
        }
        let (em, sm) = (exact.run(id), sampled.run(id));
        assert!(
            rel_err(sm.ipc, em.ipc) <= 0.08,
            "{id:?}: IPC error {:.4} exceeds the documented quick-window 8% bound ({} vs {})",
            rel_err(sm.ipc, em.ipc),
            em.ipc,
            sm.ipc
        );
        for (name, ev, sv) in [
            ("l2_mpki", em.l2_mpki, sm.l2_mpki),
            ("l3_mpki", em.l3_mpki, sm.l3_mpki),
        ] {
            assert!(
                rel_err(sv, ev) <= 0.05,
                "{id:?}: {name} error {:.4} exceeds the documented 5% bound ({ev} vs {sv})",
                rel_err(sv, ev)
            );
        }
    }
}

/// Cycle/instruction pins captured from the pre-SoA pipeline at
/// `SimOptions::quick()`, seed 2013 — the same values
/// `tests/golden_counts.rs` pins as full counter blocks.
const GOLDEN_PINS: [(BenchmarkId, u64, u64); 3] = [
    (BenchmarkId::Sort, 539_620, 199_999),
    (BenchmarkId::MediaStreaming, 574_726, 199_998),
    (BenchmarkId::HpccStream, 415_437, 200_001),
];

proptest! {
    /// Sampling **off** is the exact pre-refactor simulation, whatever
    /// plan was configured before it was turned off: clearing the plan
    /// must leave no residue in the options, and the SoA pipeline must
    /// reproduce the pre-refactor golden numbers bit-for-bit.
    #[test]
    fn sampling_off_reproduces_pre_refactor_goldens(
        e in 0usize..3,
        detail in 1_000u64..50_000,
        ffwd in 1_000u64..100_000,
    ) {
        let (id, cycles, instructions) = GOLDEN_PINS[e];
        let mut opts = SimOptions::quick().with_sampling(detail, ffwd);
        opts.sample = None;
        prop_assert!(!opts.is_sampled());
        let c = Characterizer::new(CpuConfig::westmere_e5645(), opts, 2013);
        let got = c.raw_counts(id);
        prop_assert_eq!(got.cycles, cycles, "{:?} cycles drifted", id);
        prop_assert_eq!(got.instructions, instructions, "{:?} instructions drifted", id);
    }

    /// A plan whose detailed interval covers the whole window never
    /// fast-forwards, so it *is* the exact simulation — the
    /// extrapolation ratio degenerates to exactly 1.
    #[test]
    fn plan_that_never_fast_forwards_is_bit_identical_to_exact(
        w in 0usize..11,
        detail_scale in 1u64..4,
    ) {
        let id = BenchmarkId::data_analysis()[w];
        let opts = SimOptions::exact(60_000, 20_000);
        let exact = Characterizer::new(CpuConfig::westmere_e5645(), opts, 0x5A3D_2013);
        let sampled = exact.clone().with_sampling(detail_scale * 100_000, 1);
        prop_assert_eq!(sampled.raw_counts(id), exact.raw_counts(id));
    }
}

#[test]
fn same_seed_runs_produce_byte_identical_jsonl() {
    let run_once = || {
        let buf = SharedBuf::default();
        let recorder = Recorder::jsonl(buf.clone());
        let c = harness().with_recorder(recorder.clone());
        let _ = report::phase_exhibit(&c, EVERY);
        recorder.flush();
        buf.contents()
    };
    let a = run_once();
    let b = run_once();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed phase exhibits must serialize identically");

    // And every line is a self-contained JSON object.
    let text = String::from_utf8(a).expect("utf-8 jsonl");
    for line in text.lines() {
        assert!(line.starts_with("{\"seq\":"), "line shape: {line}");
        assert!(line.ends_with("}}"), "line shape: {line}");
    }
}
