//! Interval PMU sampling through the characterizer: observation-only
//! sampling, telescoping deltas, deterministic event streams, and the
//! Exhibit PH pipeline end to end.

use dc_cpu::{core::SimOptions, CpuConfig};
use dc_obs::{Recorder, SharedBuf, Value};
use dcbench::{report, BenchmarkId, Characterizer};

/// Small windows so the full 11-workload exhibit stays fast in CI.
fn harness() -> Characterizer {
    Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions {
            max_ops: 60_000,
            warmup_ops: 20_000,
        },
        0x5A3D_2013,
    )
}

const EVERY: u64 = 20_000;

#[test]
fn sampling_with_recorder_disabled_changes_no_counters() {
    let c = harness();
    for id in [BenchmarkId::Sort, BenchmarkId::Grep, BenchmarkId::KMeans] {
        let run = c.raw_sampled(id, EVERY);
        // The sampled aggregate equals the unsampled simulation of the
        // same (entry, config, window, seed) bit-for-bit…
        assert_eq!(run.aggregate, c.raw_counts(id), "{id:?} aggregate");
        // …and the interval deltas telescope back to it exactly.
        assert_eq!(run.summed(), run.aggregate, "{id:?} telescoping");
    }
}

#[test]
fn sampled_metrics_mirror_the_raw_series() {
    let c = harness();
    let raw = c.raw_sampled(BenchmarkId::Sort, EVERY);
    let derived = c.run_sampled(BenchmarkId::Sort, EVERY);
    assert_eq!(derived.name, BenchmarkId::Sort.name());
    assert_eq!(derived.every_cycles, EVERY);
    assert_eq!(derived.aggregate, raw.aggregate);
    assert_eq!(derived.intervals.len(), raw.samples.len());
    for (iv, s) in derived.intervals.iter().zip(&raw.samples) {
        assert_eq!(iv.start_cycle, s.start_cycle);
        assert_eq!(iv.end_cycle, s.end_cycle);
        assert_eq!(iv.instructions, s.counts.instructions);
        assert!((iv.ipc - s.counts.ipc()).abs() < 1e-12);
        assert!((iv.l2_mpki - s.counts.l2_mpki()).abs() < 1e-12);
    }
}

#[test]
fn phase_exhibit_covers_all_eleven_data_analysis_workloads() {
    let c = harness();
    let figures = report::phase_exhibit(&c, EVERY);
    let ids = BenchmarkId::data_analysis();
    assert_eq!(figures.len(), ids.len());
    assert_eq!(figures.len(), 11, "the paper's eleven DA workloads");
    for (figure, id) in figures.iter().zip(ids) {
        assert_eq!(figure.id, "Exhibit PH");
        assert!(
            figure.title.contains(id.name()),
            "figure order follows workload order: {} vs {:?}",
            figure.title,
            id
        );
        assert_eq!(figure.columns.len(), 5);
        assert!(!figure.rows.is_empty());
        let rendered = figure.render();
        assert!(rendered.contains("Exhibit PH"));
    }
}

#[test]
fn recorder_captures_interval_events_in_workload_order() {
    let (recorder, ring) = Recorder::ring(1 << 14);
    let c = harness().with_recorder(recorder);
    let figures = report::phase_exhibit(&c, EVERY);
    let events = ring.snapshot();

    let summaries: Vec<String> = events
        .iter()
        .filter(|e| e.kind == "workload_sampled")
        .filter_map(|e| e.field("workload").and_then(Value::as_str))
        .map(str::to_owned)
        .collect();
    let expected: Vec<String> = BenchmarkId::data_analysis()
        .iter()
        .map(|id| id.name().to_owned())
        .collect();
    assert_eq!(summaries, expected, "one summary per workload, in order");

    let interval_events = events
        .iter()
        .filter(|e| e.kind == "interval_sample")
        .count();
    let figure_rows: usize = figures.iter().map(|f| f.rows.len()).sum();
    assert_eq!(interval_events, figure_rows, "one event per exhibit row");

    // Events within a workload are in interval order, timestamped at
    // the interval close (simulated cycles).
    let sort_ts: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.kind == "interval_sample"
                && e.field("workload").and_then(Value::as_str) == Some(BenchmarkId::Sort.name())
        })
        .map(|e| e.ts)
        .collect();
    assert!(!sort_ts.is_empty());
    assert!(sort_ts.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn same_seed_runs_produce_byte_identical_jsonl() {
    let run_once = || {
        let buf = SharedBuf::default();
        let recorder = Recorder::jsonl(buf.clone());
        let c = harness().with_recorder(recorder.clone());
        let _ = report::phase_exhibit(&c, EVERY);
        recorder.flush();
        buf.contents()
    };
    let a = run_once();
    let b = run_once();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed phase exhibits must serialize identically");

    // And every line is a self-contained JSON object.
    let text = String::from_utf8(a).expect("utf-8 jsonl");
    for line in text.lines() {
        assert!(line.starts_with("{\"seq\":"), "line shape: {line}");
        assert!(line.ends_with("}}"), "line shape: {line}");
    }
}
