//! Integration across the real-execution path: datagen → analytics
//! algorithms → mapreduce engine → cluster model.

use dc_analytics::Workload;
use dc_datagen::Scale;
use dc_mapreduce::cluster::{simulate, ClusterConfig};
use dc_mapreduce::engine::JobConfig;
use dcbench::cluster_experiments::job_model;

#[test]
fn all_eleven_workloads_run_end_to_end() {
    let cfg = JobConfig::default();
    for &w in Workload::all() {
        let run = w.run(Scale::bytes(32 << 10), &cfg).expect("fault-free run");
        assert!(run.outputs > 0, "{w}");
        assert!(run.stats.map_input_bytes > 0, "{w}");
        assert!(
            run.stats.reduce_output_records > 0 || run.stats.map_output_records > 0,
            "{w}"
        );
        assert_eq!(
            run.stats.failed_attempts, 0,
            "{w}: clean run recorded failures"
        );
    }
}

#[test]
fn cluster_survives_one_slave_failing_mid_map() {
    // ISSUE acceptance: at 8 slaves with one slave failing mid-map, every
    // job model completes with a strictly higher runtime than the
    // healthy run, and never errors or returns NaN.
    use dc_mapreduce::cluster::{simulate_with_failures, FailureModel};
    for &w in Workload::all() {
        let model = job_model(w, Scale::bytes(32 << 10));
        let cluster = ClusterConfig::paper(8);
        let healthy = simulate(&cluster, &model);
        let failures = FailureModel::single_loss(healthy.map_secs / 2.0);
        let degraded = simulate_with_failures(&cluster, &model, &failures);
        assert!(
            degraded.makespan_secs.is_finite(),
            "{w}: makespan not finite"
        );
        assert!(
            degraded.makespan_secs > healthy.makespan_secs,
            "{w}: node loss must cost time ({} vs {})",
            degraded.makespan_secs,
            healthy.makespan_secs
        );
        assert!(degraded.reexecuted_work_secs > 0.0, "{w}");
        assert!(degraded.rereplicated_mb > 0.0, "{w}");
    }
}

#[test]
fn engine_stats_scale_into_cluster_models() {
    for &w in Workload::all() {
        let model = job_model(w, Scale::bytes(32 << 10));
        assert!(model.input_gb > 100.0, "{w}: paper-scale input");
        assert!(model.map_cpu_secs_per_gb > 0.0, "{w}");
        assert!(
            model.shuffle_ratio >= 0.0 && model.shuffle_ratio < 20.0,
            "{w}"
        );
        let run = simulate(&ClusterConfig::paper(4), &model);
        assert!(
            run.makespan_secs.is_finite() && run.makespan_secs > 0.0,
            "{w}"
        );
    }
}

#[test]
fn sort_is_the_io_outlier() {
    // Paper narrative: "the input data size of Sort is equal to the
    // output data size" while most data-analysis jobs reduce their
    // input. (Model-training jobs can exceed input at tiny test scales
    // because vocabularies have not saturated, so the claim is checked
    // as: Sort ≈ 1.0, and a clear majority of workloads reduce.)
    let sort = job_model(Workload::Sort, Scale::bytes(48 << 10));
    assert!(
        (0.9..1.3).contains(&sort.output_ratio),
        "sort output ≈ input: {:.2}",
        sort.output_ratio
    );
    assert!(sort.shuffle_ratio > 0.9, "sort shuffles everything");
    let reducers = Workload::all()
        .iter()
        .filter(|&&w| w != Workload::Sort)
        .filter(|&&w| job_model(w, Scale::bytes(48 << 10)).output_ratio < sort.output_ratio)
        .count();
    assert!(
        reducers >= 7,
        "most workloads reduce their input: {reducers}/10"
    );
}
