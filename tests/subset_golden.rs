//! Golden pins for Exhibit SS (ISSUE 10): the quick-window exhibit of
//! the full 11-workload matrix is pinned **byte for byte** — text
//! (`golden_exhibit_ss_quick.txt`, the example's stdout) and canonical
//! JSON (`golden_exhibit_ss_quick.jsonl`, the `--jsonl` artifact) —
//! plus hand-computed fixtures with analytically known eigenpairs.
//!
//! If an intentional change shifts these bytes, regenerate with:
//!
//! ```text
//! cargo run --release --example subsetting -- --quick \
//!     --jsonl tests/golden_exhibit_ss_quick.jsonl \
//!     > tests/golden_exhibit_ss_quick.txt
//! ```

use dcbench::stats::{jacobi_eigen, subset_of_metrics, Linkage, Pca, VARIANCE_TARGET};
use dcbench::{report, Characterizer};

const GOLDEN_TEXT: &str = include_str!("golden_exhibit_ss_quick.txt");
const GOLDEN_JSONL: &str = include_str!("golden_exhibit_ss_quick.jsonl");

#[test]
fn exhibit_ss_text_and_jsonl_match_golden_bytes() {
    let bench = Characterizer::quick();
    let subset = report::subset_exhibit(&bench, 4, Linkage::Complete);
    assert_eq!(
        subset.render_text("quick", bench.seed()),
        GOLDEN_TEXT,
        "Exhibit SS text drifted from the golden pin"
    );
    assert_eq!(
        format!("{}\n", subset.to_json("quick", bench.seed())),
        GOLDEN_JSONL,
        "Exhibit SS JSON drifted from the golden pin"
    );
}

#[test]
fn exhibit_ss_retains_at_least_85_percent_variance() {
    let bench = Characterizer::quick();
    let subset = report::subset_exhibit(&bench, 4, Linkage::Complete);
    let covered = subset.pca.cumulative(subset.pca.retained);
    assert!(
        covered >= VARIANCE_TARGET,
        "retained components cover {covered}, need >= {VARIANCE_TARGET}"
    );
    assert_eq!(subset.clusters.len(), 4);
    assert_eq!(subset.chosen().len(), 4);
    // The subset is drawn from the 11 DA workloads, one medoid each.
    assert_eq!(subset.labels.len(), 11);
}

#[test]
fn exhibit_ss_rebuilt_from_rows_matches_report_path() {
    // The server verb builds the exhibit from characterized rows; the
    // report path from the Characterizer. Same rows → same bytes.
    let bench = Characterizer::quick();
    let rows = bench.run_many(dcbench::BenchmarkId::data_analysis());
    let a = report::subset_exhibit(&bench, 3, Linkage::Average);
    let b = subset_of_metrics(&rows, 3, Linkage::Average);
    assert_eq!(a.to_json("quick", 2013), b.to_json("quick", 2013));
    assert_eq!(a.render_text("quick", 2013), b.render_text("quick", 2013));
}

#[test]
fn jacobi_matches_the_analytic_3x3_eigenpairs() {
    // [[2,1,0],[1,2,0],[0,0,5]] has exact eigenpairs:
    //   λ=5 → [0, 0, 1]
    //   λ=3 → [1/√2, 1/√2, 0]
    //   λ=1 → [1/√2, −1/√2, 0]  (sign-canonicalized)
    let a = vec![
        vec![2.0, 1.0, 0.0],
        vec![1.0, 2.0, 0.0],
        vec![0.0, 0.0, 5.0],
    ];
    let eig = jacobi_eigen(&a);
    let r = 1.0 / 2.0f64.sqrt();
    let want = [
        (5.0, [0.0, 0.0, 1.0]),
        (3.0, [r, r, 0.0]),
        (1.0, [r, -r, 0.0]),
    ];
    for (i, (val, vec)) in want.iter().enumerate() {
        assert!(
            (eig.values[i] - val).abs() < 1e-10,
            "eigenvalue {i}: {} vs {val}",
            eig.values[i]
        );
        for (g, w) in eig.vectors[i].iter().zip(vec) {
            assert!(
                (g - w).abs() < 1e-10,
                "eigenvector {i}: {:?}",
                eig.vectors[i]
            );
        }
    }
}

#[test]
fn pca_matches_the_analytic_rank_one_fixture() {
    // Column 1 carries all the variance; column 2 is constant. The
    // correlation matrix is [[1,0],[0,0]]: eigenvalues exactly {1, 0},
    // one retained component explaining 100%.
    let m = vec![
        vec![1.0, 7.0],
        vec![-1.0, 7.0],
        vec![2.0, 7.0],
        vec![-2.0, 7.0],
    ];
    let pca = Pca::fit(&m, VARIANCE_TARGET);
    assert!((pca.eigenvalues[0] - 1.0).abs() < 1e-12);
    assert!(pca.eigenvalues[1].abs() < 1e-12);
    assert_eq!(pca.retained, 1);
    assert!((pca.variance_fraction[0] - 1.0).abs() < 1e-12);
    // First principal axis is ±e1, canonicalized to +e1.
    assert!((pca.components[0][0] - 1.0).abs() < 1e-12);
    assert!(pca.components[0][1].abs() < 1e-12);
}
