//! End-to-end tests for the `dc-server` daemon: real TCP connections
//! against an in-process server (every test gets its own listener and
//! executor pool, all sharing this process's memo cache — so each test
//! uses seeds nothing else in the binary touches), plus one subprocess
//! test of the `--stdio` transport against the actual binary.

use dc_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

/// One in-process daemon on an ephemeral port.
struct TestDaemon {
    server: Server,
    addr: std::net::SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TestDaemon {
    fn start(workers: usize, queue_cap: usize) -> TestDaemon {
        let server = Server::start(ServerConfig {
            workers,
            queue_cap,
            recorder: dc_obs::Recorder::disabled(),
            ..ServerConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("bound");
        let accept = {
            let server = server.clone();
            std::thread::spawn(move || server.serve_listener(&listener))
        };
        TestDaemon {
            server,
            addr,
            accept: Some(accept),
        }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(self.addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn {
            reader,
            writer: stream,
            next_id: 0,
        }
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        self.server.begin_shutdown();
        // Wake the accept loop, then join everything.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.server.wait();
    }
}

/// A line-oriented client connection with auto-assigned request ids.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Conn {
    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv(&mut self) -> String {
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf).expect("recv");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        buf.trim_end_matches('\n').to_string()
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn request(&mut self, verb_and_payload: &str) -> String {
        let id = self.fresh_id();
        self.round_trip(&format!("{{\"id\":{id},{verb_and_payload}}}"))
    }

    /// Submit and return the assigned job name.
    fn submit(&mut self, job: &str) -> String {
        let response = self.request(&format!("\"verb\":\"submit\",\"job\":{job}"));
        assert!(
            response.contains("\"ok\":true"),
            "submit failed: {response}"
        );
        field_str(&response, "job").expect("job name in submit response")
    }

    /// Poll status until the job is terminal; returns the final raw
    /// status response.
    fn await_terminal(&mut self, job: &str) -> String {
        for _ in 0..4000u32 {
            let response = self.request(&format!("\"verb\":\"status\",\"job\":\"{job}\""));
            let state = field_str(&response, "state").expect("state in status");
            if state == "done" || state == "cancelled" || state == "failed" {
                return response;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("job {job} never reached a terminal state");
    }
}

/// First `"name":"…"` string field anywhere in a raw response (enough
/// for the flat envelopes these tests inspect).
fn field_str(raw: &str, name: &str) -> Option<String> {
    fn find(doc: &dc_benches::schema::Json, name: &str) -> Option<String> {
        use dc_benches::schema::Json;
        match doc {
            Json::Obj(pairs) => pairs.iter().find_map(|(k, v)| {
                if k == name {
                    if let Json::Str(s) = v {
                        return Some(s.clone());
                    }
                }
                find(v, name)
            }),
            _ => None,
        }
    }
    find(&dc_benches::schema::parse_json(raw).ok()?, name)
}

/// The byte-exact `"output":{…}` object of a status response.
fn extract_output(raw: &str) -> &str {
    let at = raw.find("\"output\":").expect("output present");
    let start = at + "\"output\":".len();
    let bytes = raw.as_bytes();
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes[start..].iter().enumerate() {
        if in_string {
            match (escaped, b) {
                (true, _) => escaped = false,
                (false, b'\\') => escaped = true,
                (false, b'"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return &raw[start..start + i + 1];
                }
            }
            _ => {}
        }
    }
    panic!("unterminated output object in {raw}");
}

fn simulations(raw: &str) -> u64 {
    let at = raw.find("\"simulations\":").expect("simulations present");
    raw[at + "\"simulations\":".len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("simulations is an integer")
}

#[test]
fn warm_resubmission_simulates_nothing_and_matches_bytes() {
    let daemon = TestDaemon::start(2, 16);
    let spec = "{\"entries\":[\"Sort\",\"Grep\",\"K-means\"],\"seed\":611}";

    let mut cold = daemon.connect();
    let job = cold.submit(spec);
    let cold_status = cold.await_terminal(&job);
    assert!(cold_status.contains("\"state\":\"done\""));
    assert_eq!(simulations(&cold_status), 3, "three cold entries simulate");
    let cold_output = extract_output(&cold_status).to_string();

    // A *different* client connection, same spec: answered entirely
    // from the shared memo cache.
    let mut warm = daemon.connect();
    let job2 = warm.submit(spec);
    assert_ne!(job, job2, "job names are per-submission, never deduped");
    let warm_status = warm.await_terminal(&job2);
    assert_eq!(
        simulations(&warm_status),
        0,
        "warm resubmission: zero simulations"
    );
    assert_eq!(
        extract_output(&warm_status),
        cold_output,
        "byte-identical output regardless of cache temperature"
    );
}

#[test]
fn concurrent_clients_all_get_identical_results() {
    let daemon = TestDaemon::start(2, 16);
    let spec = "{\"entries\":[\"PageRank\",\"WordCount\"],\"seed\":612}";
    let outputs: Vec<(String, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let daemon = &daemon;
                s.spawn(move || {
                    let mut conn = daemon.connect();
                    let job = conn.submit(spec);
                    let status = conn.await_terminal(&job);
                    (extract_output(&status).to_string(), simulations(&status))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (output, _) in &outputs {
        assert_eq!(output, &outputs[0].0, "every client sees the same bytes");
    }
    // Concurrent cold submissions may race on a key (both simulate,
    // harmlessly — the cache documents that), but no job can simulate
    // more than its own entry count, and with four racers at least one
    // lands fully warm.
    let sims: Vec<u64> = outputs.iter().map(|(_, s)| *s).collect();
    assert!(
        sims.iter().all(|&s| s <= 2),
        "no job exceeds its entry count: {sims:?}"
    );
    assert!(sims.contains(&0), "some client is fully warm: {sims:?}");
}

#[test]
fn stream_follows_a_live_job_and_passes_the_schema_check() {
    let daemon = TestDaemon::start(1, 16);
    let mut conn = daemon.connect();
    let job = conn.submit("{\"entries\":[\"Sort\",\"Grep\"],\"seed\":613}");
    // Stream immediately: replay what exists, follow until job_done.
    conn.send(&format!(
        "{{\"id\":\"s2\",\"verb\":\"stream\",\"job\":\"{job}\"}}"
    ));
    let mut inner_events = Vec::new();
    let final_response = loop {
        let line = conn.recv();
        if let Some(at) = line.find("\"event\":") {
            inner_events.push(line[at + "\"event\":".len()..line.len() - 1].to_string());
        } else {
            break line;
        }
    };
    assert!(
        final_response.contains("\"ok\":true"),
        "stream ends ok: {final_response}"
    );
    assert!(final_response.contains("\"state\":\"done\""));

    // The streamed event log is a complete, schema-valid, gapless
    // dc-obs artifact in its own right.
    let stream_text = inner_events.join("\n");
    let count = dc_benches::schema::validate_stream(&stream_text)
        .unwrap_or_else(|e| panic!("streamed events fail the schema check: {e}\n{stream_text}"));
    assert_eq!(count, inner_events.len());
    assert!(inner_events[0].contains("\"kind\":\"job_queued\""));
    assert!(inner_events
        .last()
        .expect("nonempty")
        .contains("\"kind\":\"job_done\""));
    assert_eq!(
        inner_events
            .iter()
            .filter(|e| e.contains("\"cache_miss\""))
            .count(),
        2,
        "one miss per cold entry"
    );

    // Replaying after completion yields the identical event bytes.
    conn.send(&format!(
        "{{\"id\":\"s3\",\"verb\":\"stream\",\"job\":\"{job}\"}}"
    ));
    let mut replay = Vec::new();
    loop {
        let line = conn.recv();
        if let Some(at) = line.find("\"event\":") {
            replay.push(line[at + "\"event\":".len()..line.len() - 1].to_string());
        } else {
            break;
        }
    }
    assert_eq!(
        replay, inner_events,
        "replay is byte-identical to the live follow"
    );
}

#[test]
fn queued_jobs_cancel_while_the_executor_is_busy() {
    let daemon = TestDaemon::start(1, 16);
    let mut conn = daemon.connect();
    // Occupy the single executor with a wide job, then pile two more
    // behind it and cancel the last while it is still queued.
    let busy = conn.submit("{\"entries\":\"all\",\"seed\":614}");
    let second = conn.submit("{\"entries\":[\"Sort\"],\"seed\":615}");
    let victim = conn.submit("{\"entries\":[\"Grep\"],\"seed\":616}");
    let response = conn.request(&format!("\"verb\":\"cancel\",\"job\":\"{victim}\""));
    assert!(
        response.contains("\"ok\":true"),
        "cancel queued: {response}"
    );
    assert!(response.contains("\"state\":\"cancelled\""));
    // Cancelling it again is a structured error, not a state change.
    let again = conn.request(&format!("\"verb\":\"cancel\",\"job\":\"{victim}\""));
    assert!(again.contains("\"bad_request\""), "double cancel: {again}");
    // The cancelled job stays terminal; its siblings still finish.
    assert!(conn.await_terminal(&busy).contains("\"state\":\"done\""));
    assert!(conn.await_terminal(&second).contains("\"state\":\"done\""));
    assert!(conn
        .await_terminal(&victim)
        .contains("\"state\":\"cancelled\""));
}

#[test]
fn garbage_never_takes_the_connection_down() {
    let daemon = TestDaemon::start(1, 16);
    let mut conn = daemon.connect();
    assert!(conn.round_trip("}{ not json").contains("\"parse_error\""));
    assert!(conn.round_trip("[1,2,3]").contains("\"parse_error\""));
    assert!(conn
        .round_trip("{\"id\":\"g1\",\"verb\":\"warp\"}")
        .contains("\"unknown_verb\""));
    assert!(conn
        .round_trip("{\"id\":\"g2\",\"verb\":\"status\",\"job\":\"job-404\"}")
        .contains("\"unknown_job\""));
    let oversized = "x".repeat(dc_server::protocol::MAX_LINE_BYTES + 1);
    assert!(conn.round_trip(&oversized).contains("\"line_too_long\""));
    // After all of that abuse, the same connection still does real work.
    let job = conn.submit("{\"entries\":[\"HMM\"],\"seed\":617}");
    assert!(conn.await_terminal(&job).contains("\"state\":\"done\""));
}

#[test]
fn subset_verb_round_trips_warm_and_byte_matches_the_offline_exhibit() {
    let daemon = TestDaemon::start(2, 16);
    let spec =
        "\"verb\":\"subset\",\"k\":4,\"linkage\":\"complete\",\"window\":\"quick\",\"seed\":619";

    // Cold daemon: each of the 11 data-analysis workloads simulates.
    let mut cold = daemon.connect();
    let cold_response = cold.request(spec);
    assert!(
        cold_response.contains("\"ok\":true"),
        "cold: {cold_response}"
    );
    assert_eq!(simulations(&cold_response), 11, "eleven cold entries");
    let cold_output = extract_output(&cold_response).to_string();
    assert!(cold_output.contains("\"kind\":\"subset\""));
    assert!(cold_output.contains("\"subset\":["));

    // A different client, same spec, warm daemon: zero simulations and
    // byte-identical output.
    let mut warm = daemon.connect();
    let warm_response = warm.request(spec);
    assert_eq!(
        simulations(&warm_response),
        0,
        "warm subset: {warm_response}"
    );
    assert_eq!(extract_output(&warm_response), cold_output);

    // The daemon's output byte-matches the offline exhibit pipeline
    // for the same (k, linkage, window, seed).
    let bench = dcbench::Characterizer::new(
        dc_cpu::CpuConfig::westmere_e5645(),
        dc_server::Window::Quick.sim_options(),
        619,
    );
    let offline = dcbench::report::subset_exhibit(&bench, 4, dcbench::stats::Linkage::Complete)
        .to_json("quick", 619);
    assert_eq!(cold_output, offline, "daemon vs offline bytes");

    // Malformed specs: structured bad_request, never a dropped
    // connection, never a panic.
    for bad in [
        "\"verb\":\"subset\",\"k\":0",
        "\"verb\":\"subset\",\"k\":99",
        "\"verb\":\"subset\",\"k\":2.5",
        "\"verb\":\"subset\",\"linkage\":\"ward\"",
        "\"verb\":\"subset\",\"linkage\":4",
        "\"verb\":\"subset\",\"window\":\"slow\"",
        "\"verb\":\"subset\",\"seed\":-2",
    ] {
        let response = warm.request(bad);
        assert!(
            response.contains("\"bad_request\""),
            "spec {bad}: {response}"
        );
    }
    // After the abuse the same connection still answers subsets.
    let again = warm.request(spec);
    assert_eq!(simulations(&again), 0);
    assert_eq!(extract_output(&again), cold_output);
}

#[test]
fn stdio_transport_round_trips_through_the_real_binary() {
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_dc-server"))
        .args(["--stdio", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dc-server --stdio");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut round_trip = |line: &str| -> String {
        stdin.write_all(line.as_bytes()).expect("write");
        stdin.write_all(b"\n").expect("write newline");
        stdin.flush().expect("flush");
        let mut buf = String::new();
        reader.read_line(&mut buf).expect("read");
        buf.trim_end_matches('\n').to_string()
    };
    let submit =
        round_trip("{\"id\":1,\"verb\":\"submit\",\"job\":{\"entries\":[\"SVM\"],\"seed\":618}}");
    assert!(submit.contains("\"ok\":true"), "stdio submit: {submit}");
    let job = field_str(&submit, "job").expect("job name");
    let mut done = false;
    for poll in 0..4000u32 {
        let status = round_trip(&format!(
            "{{\"id\":\"poll-{poll}\",\"verb\":\"status\",\"job\":\"{job}\"}}"
        ));
        if field_str(&status, "state").as_deref() == Some("done") {
            done = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(done, "stdio job finishes");
    assert!(round_trip("garbage").contains("\"parse_error\""));
    let bye = round_trip("{\"id\":\"end\",\"verb\":\"shutdown\"}");
    assert!(bye.contains("\"shutting_down\""), "shutdown ack: {bye}");
    drop(stdin);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean exit after shutdown: {status:?}");
}
