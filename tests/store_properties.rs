//! Property suite for the dc-store recovery laws.
//!
//! Three laws, per ISSUE 6:
//!
//! 1. **Round trip**: persist → recover is the identity (modulo
//!    last-writer-wins dedup) for any set of records, both through the
//!    pure byte path and through a real file-backed [`Store`].
//! 2. **Corruption**: for any single torn / flipped / truncated byte
//!    range, recovery returns a *verified subset* of the written
//!    records — a damaged log never panics and never serves a counter
//!    block that was not written byte-for-byte.
//! 3. **Faulted writes**: any seeded `StoreFaultPlan` chaos schedule
//!    produces a log whose recovery still obeys law 2, and the log
//!    stays appendable after reopening.
//!
//! The generators derive whole records from single `u64` labels
//! (SplitMix64-expanded), so the proptest shim's scalar strategies can
//! drive structurally rich inputs, including counter values above 2^53
//! where f64-based decoding would corrupt silently.

use dc_mapreduce::faults::splitmix64;
use dc_store::{
    counts_from_array, encode_payload, frame_line, recover, scan, Record, Store, StoreChaosSpec,
    StoreFaultPlan, StoreKey, SyncPolicy, COUNTER_FIELDS,
};
use proptest::prelude::*;
use std::path::PathBuf;

const ENTRIES: &[&str] = &[
    "Sort",
    "Grep",
    "WordCount",
    "Naive Bayes",
    "HMM",
    "PageRank",
];

/// Expand one u64 label into a full record. Deterministic, collision-
/// poor across labels, and deliberately spanning >2^53 counter values.
fn record_from(label: u64) -> Record {
    let h = splitmix64(label);
    let mut a = [0u64; COUNTER_FIELDS];
    for (i, slot) in a.iter_mut().enumerate() {
        *slot = splitmix64(h ^ (i as u64) << 32);
    }
    let blocks = 1 + (h % 3) as usize;
    Record {
        key: StoreKey {
            entry: ENTRIES[(h >> 8) as usize % ENTRIES.len()].to_string(),
            cfg_hash: splitmix64(h ^ 0xC0FF),
            max_ops: 1 + (h >> 20) % 4_000_000,
            warmup_ops: (h >> 12) % 400_000,
            seed: splitmix64(h ^ 0x5EED),
            corun: 1 + (h % 4) as u32,
            // Every fourth key is a sampled measurement.
            sample: (h % 4 == 3).then(|| (1 + (h >> 24) % 100_000, 1 + (h >> 32) % 300_000)),
        },
        counts: (0..blocks)
            .map(|b| {
                let mut block = a;
                block[0] ^= b as u64;
                counts_from_array(&block)
            })
            .collect(),
    }
}

/// Build the byte image of a clean log holding `records`, the same way
/// the store writes it (header then framed records).
fn log_bytes(records: &[Record]) -> Vec<u8> {
    let mut bytes = frame_line(b'h', "{\"format\":\"1\",\"gen\":\"1\"}");
    for r in records {
        bytes.extend_from_slice(&frame_line(b'r', &encode_payload(r)));
    }
    bytes
}

/// Last-writer-wins dedup in first-seen key order — the recovery
/// contract for duplicate keys.
fn dedup_last_wins(records: &[Record]) -> Vec<Record> {
    let mut out: Vec<Record> = Vec::new();
    for r in records {
        match out.iter_mut().find(|o| o.key == r.key) {
            Some(slot) => *slot = r.clone(),
            None => out.push(r.clone()),
        }
    }
    out
}

/// Law 2's core assertion: everything recovered was written, verbatim.
fn assert_verified_subset(recovered: &[Record], written: &[Record]) {
    for r in recovered {
        assert!(
            written.contains(r),
            "recovery served a record that was never written: {:?}",
            r.key
        );
    }
}

fn tmp(name: &str, case_tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dc-store-props-{name}-{}-{case_tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("store.log")
}

proptest! {
    /// Law 1, pure byte path: recover(log_bytes(rs)) is exactly the
    /// last-writer-wins view of rs, with clean telemetry.
    #[test]
    fn round_trip_is_identity(labels in collection::vec(0u64..1 << 40, 0..12)) {
        let written: Vec<Record> = labels.iter().map(|&l| record_from(l)).collect();
        let rec = recover(&log_bytes(&written));
        prop_assert_eq!(&rec.records, &dedup_last_wins(&written));
        prop_assert_eq!(rec.corrupt_skipped, 0);
        prop_assert_eq!(rec.stale_skipped, 0);
        prop_assert_eq!(rec.truncated_bytes, 0);
        prop_assert!(rec.header_valid);
        prop_assert_eq!(
            u64::try_from(written.len() - rec.records.len()).expect("fits"),
            rec.superseded
        );
    }

    /// Law 1, file-backed: a real Store persists and re-recovers the
    /// same identity across close/reopen.
    #[test]
    fn file_round_trip_is_identity(labels in collection::vec(0u64..1 << 40, 1..8)) {
        let path = tmp("roundtrip", splitmix64(labels.iter().sum::<u64>() ^ labels.len() as u64));
        let written: Vec<Record> = labels.iter().map(|&l| record_from(l)).collect();
        let (mut store, _) =
            Store::open_with(&path, SyncPolicy::Never, StoreFaultPlan::none()).expect("open");
        for r in &written {
            store.append(r).expect("append");
        }
        drop(store);
        let rec = scan(&path).expect("scan");
        prop_assert_eq!(rec.records, dedup_last_wins(&written));
        prop_assert!(rec.is_clean());
    }

    /// Law 2, bit flips: flipping any single bit anywhere in a clean
    /// log yields a verified subset, never a panic, never a fabricated
    /// record.
    #[test]
    fn any_single_bit_flip_recovers_a_verified_subset(
        labels in collection::vec(0u64..1 << 40, 1..8),
        flip_at in 0u64..1 << 62,
        bit in 0u64..8,
    ) {
        let written: Vec<Record> = labels.iter().map(|&l| record_from(l)).collect();
        let mut bytes = log_bytes(&written);
        let idx = (flip_at as usize) % bytes.len();
        bytes[idx] ^= 1 << bit;
        let rec = recover(&bytes);
        assert_verified_subset(&rec.records, &written);
        // One flipped frame cannot take down more than its own record
        // plus, at worst, its two neighbors (when the flip forges or
        // destroys a newline).
        let live = dedup_last_wins(&written).len();
        prop_assert!(rec.records.len() + 3 >= live,
            "one bit flip lost {} of {live} records", live - rec.records.len());
    }

    /// Law 2, truncation: cutting the log at any byte yields a verified
    /// subset; cutting at the end is the identity.
    #[test]
    fn any_truncation_recovers_a_verified_subset(
        labels in collection::vec(0u64..1 << 40, 1..8),
        cut_at in 0u64..1 << 62,
    ) {
        let written: Vec<Record> = labels.iter().map(|&l| record_from(l)).collect();
        let bytes = log_bytes(&written);
        let cut = (cut_at as usize) % (bytes.len() + 1);
        let rec = recover(&bytes[..cut]);
        assert_verified_subset(&rec.records, &written);
        if cut == bytes.len() {
            prop_assert_eq!(rec.records, dedup_last_wins(&written));
        }
    }

    /// Law 2, torn tail + garbage splice: an arbitrary byte blob
    /// appended (complete line or torn tail) is quarantined or
    /// truncated — recovery still serves exactly the written records.
    #[test]
    fn garbage_tail_is_quarantined_or_truncated(
        labels in collection::vec(0u64..1 << 40, 1..6),
        garbage in "[a-z0-9 {}\":,.]{0,64}",
        terminated in 0u64..2,
    ) {
        let written: Vec<Record> = labels.iter().map(|&l| record_from(l)).collect();
        let mut bytes = log_bytes(&written);
        bytes.extend_from_slice(garbage.as_bytes());
        if terminated == 1 {
            bytes.push(b'\n');
        }
        let rec = recover(&bytes);
        prop_assert_eq!(rec.records, dedup_last_wins(&written));
    }

    /// Law 2, totality: recover never panics on fully arbitrary bytes.
    #[test]
    fn recover_is_total_on_arbitrary_bytes(raw in collection::vec(0u64..256, 0..160)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let rec = recover(&bytes);
        // Whatever survives must at least be schema-valid.
        prop_assert!(rec.records.iter().all(|r| !r.counts.is_empty()));
        prop_assert!(u64::try_from(rec.valid_prefix).expect("fits")
            + rec.truncated_bytes == bytes.len() as u64);
    }

    /// Law 3: a chaos-faulted writer still yields a log whose recovery
    /// is a verified subset, and the log stays appendable afterwards.
    #[test]
    fn chaos_faulted_writes_recover_a_verified_subset_and_stay_appendable(
        labels in collection::vec(0u64..1 << 40, 1..8),
        chaos_seed in 0u64..1 << 32,
    ) {
        let path = tmp("chaos", splitmix64(chaos_seed ^ labels.len() as u64));
        let written: Vec<Record> = labels.iter().map(|&l| record_from(l)).collect();
        let plan = StoreFaultPlan::chaos(
            chaos_seed,
            StoreChaosSpec { every: 2, max_offset: 300 },
        );
        let (mut store, _) =
            Store::open_with(&path, SyncPolicy::Never, plan).expect("open");
        for r in &written {
            store.append(r).expect("append");
        }
        drop(store);
        // Recovery of the damaged log: verified subset, no panic.
        let rec = scan(&path).expect("scan");
        assert_verified_subset(&rec.records, &written);
        // Reopen (repairs tail, re-stamps generation), then a clean
        // append must be recoverable — the log is not wedged.
        let (mut store, _) = Store::open(&path).expect("reopen");
        let probe = record_from(0xFEED_FACE);
        store.append(&probe).expect("append after chaos");
        drop(store);
        let rec = scan(&path).expect("rescan");
        prop_assert!(rec.records.contains(&probe),
            "post-recovery append must be served");
    }
}
