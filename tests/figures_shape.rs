//! Cross-crate shape validation: the paper's qualitative claims must
//! hold in the reproduction (DESIGN.md §8). These are the headline
//! findings of the paper, asserted against the simulated machine.

use dc_perfmon::metrics::average;
use dcbench::{BenchmarkId, Characterizer};

fn bench() -> Characterizer {
    Characterizer::full()
}

fn da(bench: &Characterizer) -> Vec<dc_perfmon::Metrics> {
    BenchmarkId::data_analysis()
        .iter()
        .map(|&id| bench.run(id))
        .collect()
}

fn services(bench: &Characterizer) -> Vec<dc_perfmon::Metrics> {
    BenchmarkId::services()
        .iter()
        .map(|&id| bench.run(id))
        .collect()
}

#[test]
fn finding1_ipc_ordering() {
    // "data analysis workloads have higher IPC than that of the services
    // workloads while lower than that of computation-intensive HPCC".
    let b = bench();
    let da_avg = average("da", &da(&b));
    let svc_avg = average("svc", &services(&b));
    let hpl = b.run(BenchmarkId::HpccHpl);
    let dgemm = b.run(BenchmarkId::HpccDgemm);
    let stream = b.run(BenchmarkId::HpccStream);

    assert!(
        svc_avg.ipc < 0.6,
        "service IPC < 0.6 (got {:.2})",
        svc_avg.ipc
    );
    assert!(
        da_avg.ipc > svc_avg.ipc + 0.1,
        "DA IPC ({:.2}) must clearly exceed services ({:.2})",
        da_avg.ipc,
        svc_avg.ipc
    );
    assert!(
        (0.6..1.0).contains(&da_avg.ipc),
        "DA average IPC ≈ 0.78 (got {:.2})",
        da_avg.ipc
    );
    assert!(hpl.ipc > 1.0, "HPL is compute-bound (got {:.2})", hpl.ipc);
    assert!(
        dgemm.ipc > 1.0,
        "DGEMM is compute-bound (got {:.2})",
        dgemm.ipc
    );
    assert!(dgemm.ipc > da_avg.ipc, "HPCC compute kernels beat DA");
    assert!(
        stream.ipc < 0.5,
        "STREAM is memory-bound (got {:.2})",
        stream.ipc
    );
}

#[test]
fn finding1b_kernel_mode_share() {
    // Services >40% kernel; DA ≈4% with Sort ≈24%; RandomAccess ≈31%.
    let b = bench();
    for m in services(&b) {
        assert!(
            m.kernel_fraction > 0.4,
            "{}: {:.2}",
            m.name,
            m.kernel_fraction
        );
    }
    let rows = da(&b);
    let sort = rows.iter().find(|m| m.name == "Sort").expect("sort");
    assert!(
        (0.15..0.35).contains(&sort.kernel_fraction),
        "{}",
        sort.kernel_fraction
    );
    let others_avg = average(
        "rest",
        &rows
            .iter()
            .filter(|m| m.name != "Sort")
            .cloned()
            .collect::<Vec<_>>(),
    );
    assert!(
        others_avg.kernel_fraction < 0.10,
        "{}",
        others_avg.kernel_fraction
    );
    let ra = b.run(BenchmarkId::HpccRandomAccess);
    assert!(
        (0.2..0.4).contains(&ra.kernel_fraction),
        "{}",
        ra.kernel_fraction
    );
}

#[test]
fn finding2_stall_breakdown_contrast() {
    // DA stalls concentrate in the out-of-order part (~57% on average);
    // services stall before entering it (~73% on average).
    let b = bench();
    let da_avg = average("da", &da(&b));
    let svc_avg = average("svc", &services(&b));
    assert!(
        da_avg.ooo_stall_share() > 0.5,
        "DA OoO-part stall share: {:.2}",
        da_avg.ooo_stall_share()
    );
    assert!(
        svc_avg.in_order_stall_share() > 0.6,
        "service in-order stall share: {:.2}",
        svc_avg.in_order_stall_share()
    );
    // Both classes suffer notable front-end stalls (unlike SPEC/HPCC).
    let dgemm = b.run(BenchmarkId::HpccDgemm);
    assert!(da_avg.stall_breakdown[0] > dgemm.stall_breakdown[0]);
}

#[test]
fn finding3_l1i_and_itlb() {
    // DA ≈23 L1I MPKI — above SPEC/HPCC, below (most) services; Media
    // Streaming ≈3× the DA average; Naive Bayes is the DA exception with
    // the smallest instruction footprint effects.
    let b = bench();
    let rows = da(&b);
    let da_avg = average("da", &rows);
    assert!(
        (10.0..40.0).contains(&da_avg.l1i_mpki),
        "DA L1I MPKI ≈ 23 (got {:.1})",
        da_avg.l1i_mpki
    );
    let media = b.run(BenchmarkId::MediaStreaming);
    assert!(
        media.l1i_mpki > 2.0 * da_avg.l1i_mpki,
        "Media Streaming ≈3×: {:.1} vs {:.1}",
        media.l1i_mpki,
        da_avg.l1i_mpki
    );
    for id in [
        BenchmarkId::SpecFp,
        BenchmarkId::HpccDgemm,
        BenchmarkId::HpccStream,
    ] {
        let m = b.run(id);
        assert!(m.l1i_mpki < 5.0, "{}: L1I MPKI {:.1}", m.name, m.l1i_mpki);
    }
    let bayes = rows
        .iter()
        .find(|m| m.name == "Naive Bayes")
        .expect("bayes");
    assert!(
        bayes.l1i_mpki < da_avg.l1i_mpki / 2.0,
        "Bayes has the smallest L1I misses: {:.1}",
        bayes.l1i_mpki
    );
    let da_avg_itlb = rows.iter().map(|m| m.itlb_walk_pki).sum::<f64>() / rows.len() as f64;
    assert!(
        bayes.itlb_walk_pki < da_avg_itlb / 2.0,
        "Bayes is the ITLB exception: {:.3} vs DA avg {:.3}",
        bayes.itlb_walk_pki,
        da_avg_itlb
    );
}

#[test]
fn finding4_cache_hierarchy() {
    // DA ≈11 L2 MPKI vs services ≈60; L3 captures 85.5% (DA) and 94.9%
    // (services) of L2 misses; services above DA on both counts.
    let b = bench();
    let da_avg = average("da", &da(&b));
    let svc_avg = average("svc", &services(&b));
    assert!(
        (5.0..25.0).contains(&da_avg.l2_mpki),
        "DA L2 MPKI ≈ 11 (got {:.1})",
        da_avg.l2_mpki
    );
    assert!(
        (35.0..90.0).contains(&svc_avg.l2_mpki),
        "service L2 MPKI ≈ 60 (got {:.1})",
        svc_avg.l2_mpki
    );
    assert!(svc_avg.l2_mpki > 3.0 * da_avg.l2_mpki);
    assert!(
        (0.75..0.95).contains(&da_avg.l3_hit_ratio),
        "DA L3 ratio ≈ 85.5% (got {:.2})",
        da_avg.l3_hit_ratio
    );
    assert!(
        svc_avg.l3_hit_ratio > da_avg.l3_hit_ratio,
        "services' L2 misses are L3-resident: {:.2} vs {:.2}",
        svc_avg.l3_hit_ratio,
        da_avg.l3_hit_ratio
    );
    // HPCC's streaming kernels get much less help from the L3.
    let stream = b.run(BenchmarkId::HpccStream);
    let ra = b.run(BenchmarkId::HpccRandomAccess);
    assert!(stream.l3_hit_ratio < da_avg.l3_hit_ratio);
    assert!(ra.l3_hit_ratio < 0.5, "GUPS misses the whole hierarchy");
}

#[test]
fn finding4b_dtlb_walks() {
    // Most DA workloads walk less than services/SPEC; Naive Bayes is the
    // exception with elevated DTLB walks.
    let b = bench();
    let rows = da(&b);
    let bayes = rows
        .iter()
        .find(|m| m.name == "Naive Bayes")
        .expect("bayes");
    let rest = average(
        "rest",
        &rows
            .iter()
            .filter(|m| m.name != "Naive Bayes")
            .cloned()
            .collect::<Vec<_>>(),
    );
    assert!(
        bayes.dtlb_walk_pki > 2.0 * rest.dtlb_walk_pki,
        "Bayes walks more: {:.2} vs rest {:.2}",
        bayes.dtlb_walk_pki,
        rest.dtlb_walk_pki
    );
    let svc_avg = average("svc", &services(&b));
    assert!(
        svc_avg.dtlb_walk_pki > rest.dtlb_walk_pki,
        "services walk more than typical DA: {:.2} vs {:.2}",
        svc_avg.dtlb_walk_pki,
        rest.dtlb_walk_pki
    );
    let dgemm = b.run(BenchmarkId::HpccDgemm);
    assert!(
        dgemm.dtlb_walk_pki < rest.dtlb_walk_pki,
        "HPCC compute kernels walk least"
    );
}

#[test]
fn finding5_branch_prediction() {
    // DA misprediction below services and SPECINT; HPCC ≈ 0.
    let b = bench();
    let da_avg = average("da", &da(&b));
    let svc_avg = average("svc", &services(&b));
    let specint = b.run(BenchmarkId::SpecInt);
    assert!(
        da_avg.branch_misprediction < 0.04,
        "DA mispredicts ≈2-3% (got {:.3})",
        da_avg.branch_misprediction
    );
    assert!(da_avg.branch_misprediction < svc_avg.branch_misprediction);
    assert!(da_avg.branch_misprediction < specint.branch_misprediction);
    for &id in BenchmarkId::hpcc() {
        if id == BenchmarkId::HpccComm || id == BenchmarkId::HpccRandomAccess {
            continue; // kernel-path branches (network / copy_user)
        }
        let m = b.run(id);
        assert!(
            m.branch_misprediction < 0.012,
            "{}: {:.3}",
            m.name,
            m.branch_misprediction
        );
    }
}
