//! Exhibit CO: shape, contention physics, and cache coverage.
//!
//! Runs the co-run exhibit at a reduced window (the full-window numbers
//! live in EXPERIMENTS.md) and checks the property the exhibit exists
//! to show: as 1 → 4 → 8 copies of a data-analysis workload share the
//! chip's L3, the observed task's L3 MPKI must not decrease for at
//! least 9 of the 11 workloads — and regenerating the exhibit warm must
//! re-simulate nothing.

use dc_cpu::{core::SimOptions, CpuConfig};
use dcbench::report::{corun_exhibit, CORUN_WIDTHS};
use dcbench::{cache, Characterizer};

fn harness() -> Characterizer {
    Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(75_000, 75_000),
        2013,
    )
}

#[test]
fn exhibit_co_shape_contention_and_cache_coverage() {
    let c = harness();
    let fig = corun_exhibit(&c);

    // ---- Shape ----
    assert_eq!(fig.id, "Exhibit CO");
    assert_eq!(fig.rows.len(), 11, "one row per data-analysis workload");
    assert_eq!(fig.columns.len(), 2 * CORUN_WIDTHS.len());
    for (label, vals) in &fig.rows {
        assert_eq!(vals.len(), 6, "row {label} has MPKI and IPC per width");
        assert!(vals.iter().all(|v| v.is_finite()));
    }

    // ---- Contention physics ----
    // L3 MPKI must be monotonically non-decreasing across 1 → 4 → 8
    // co-runners for at least 9 of the 11 workloads.
    let monotone = fig
        .rows
        .iter()
        .filter(|(_, v)| v[0] <= v[1] && v[1] <= v[2])
        .count();
    assert!(
        monotone >= 9,
        "only {monotone}/11 workloads show non-decreasing L3 MPKI under \
         contention: {:?}",
        fig.rows
            .iter()
            .map(|(l, v)| (l.clone(), v[0], v[1], v[2]))
            .collect::<Vec<_>>()
    );
    // And the contended task must not get *faster* on average.
    let mean = |i: usize| fig.rows.iter().map(|(_, v)| v[i]).sum::<f64>() / 11.0;
    assert!(
        mean(5) <= mean(3) + 1e-9,
        "mean IPC rose under 8-way contention: {} -> {}",
        mean(3),
        mean(5)
    );

    // ---- Cache coverage ----
    // The full co-run matrix is memoized: a warm regeneration must not
    // simulate anything.
    let sims_before = cache::sim_invocations();
    let warm = corun_exhibit(&c);
    assert_eq!(
        cache::sim_invocations(),
        sims_before,
        "warm exhibit regeneration re-simulated"
    );
    assert_eq!(warm.rows.len(), fig.rows.len());
    for ((la, va), (lb, vb)) in warm.rows.iter().zip(&fig.rows) {
        assert_eq!(la, lb);
        assert_eq!(va, vb, "warm rerun changed {la}");
    }
}
