//! Fuzz-style robustness tests for the `dc-server` wire protocol, in
//! the same idiom as `tests/schema_fuzz.rs`: adversarial input must
//! come back as a structured error response — never a panic, never a
//! hang, and never a dropped connection.
//!
//! One shared in-process daemon serves every case (the fuzz traffic and
//! the concurrent test threads exercise exactly the concurrent-client
//! path the daemon runs in production). Every fuzz connection carries a
//! read timeout, so a protocol hang fails the test instead of wedging
//! the suite.

use dc_server::protocol::{self, MAX_LINE_BYTES};
use dc_server::{Server, ServerConfig};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

fn daemon_addr() -> std::net::SocketAddr {
    static DAEMON: OnceLock<std::net::SocketAddr> = OnceLock::new();
    *DAEMON.get_or_init(|| {
        let server = Server::start(ServerConfig {
            workers: 2,
            queue_cap: 64,
            recorder: dc_obs::Recorder::disabled(),
            ..ServerConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("bound");
        std::thread::spawn(move || server.serve_listener(&listener));
        addr
    })
}

struct FuzzConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl FuzzConn {
    fn connect() -> FuzzConn {
        let stream = TcpStream::connect(daemon_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        FuzzConn {
            reader,
            writer: stream,
        }
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.flush().expect("flush");
    }

    /// One response line; a read timeout (the daemon hung) or EOF (the
    /// daemon dropped us) both fail the test.
    fn recv(&mut self) -> String {
        let mut buf = String::new();
        let n = self
            .reader
            .read_line(&mut buf)
            .expect("response before timeout (daemon must not hang)");
        assert!(n > 0, "daemon dropped the connection");
        buf.trim_end_matches('\n').to_string()
    }

    /// The connection still works: an unknown-job probe comes back as
    /// the documented structured error.
    fn assert_alive(&mut self, probe_id: &str) {
        self.send_bytes(
            format!("{{\"id\":\"{probe_id}\",\"verb\":\"status\",\"job\":\"job-none\"}}\n")
                .as_bytes(),
        );
        let response = self.recv();
        assert!(
            response.contains("\"unknown_job\""),
            "probe after abuse: {response}"
        );
    }
}

/// Every response is a JSON object with an "ok" field — the envelope
/// contract even for garbage input.
fn assert_response_envelope(response: &str) {
    assert!(
        response.starts_with("{\"id\":") && response.contains("\"ok\":"),
        "malformed response envelope: {response}"
    );
}

proptest! {
    /// The request parser is total over arbitrary strings: every input
    /// parses or errors, never panics. (Pure-function layer, no server.)
    #[test]
    fn parse_request_is_total(bytes in collection::vec(0u16..256, 0..300)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        match protocol::parse_request(&text) {
            Ok(req) => { let _ = req.verb(); }
            Err((id, err)) => {
                // Error rendering is total too.
                let _ = protocol::error_response(id.as_ref(), &err);
            }
        }
    }

    /// Arbitrary byte soup on the wire: one line in, one structured
    /// response out, and the connection keeps serving afterwards.
    #[test]
    fn arbitrary_lines_get_structured_errors(bytes in collection::vec(0u16..256, 0..200)) {
        let mut line: Vec<u8> = bytes
            .into_iter()
            .map(|b| b as u8)
            .filter(|&b| b != b'\n' && b != b'\r')
            .collect();
        line.push(b'\n');
        let mut conn = FuzzConn::connect();
        conn.send_bytes(&line);
        assert_response_envelope(&conn.recv());
        conn.assert_alive("alive-arb");
    }

    /// JSON-shaped garbage — punctuation soups that walk deepest into
    /// the parser — same contract.
    #[test]
    fn json_shaped_garbage_gets_structured_errors(text in r#"[{}:,"0-9a-z. -]{0,150}"#) {
        let mut conn = FuzzConn::connect();
        conn.send_bytes(format!("{text}\n").as_bytes());
        assert_response_envelope(&conn.recv());
        conn.assert_alive("alive-json");
    }

    /// Every proper prefix of a valid request line is answered with an
    /// error response (no prefix is a complete JSON object), and the
    /// connection survives.
    #[test]
    fn truncated_frames_are_errors(cut_permille in 0u64..1000) {
        let full = r#"{"id":"t1","verb":"submit","job":{"entries":["Sort"],"seed":701}}"#;
        // permille < 1000, so cut is always a proper prefix length.
        let cut = (cut_permille as usize * full.len()) / 1000;
        let mut conn = FuzzConn::connect();
        conn.send_bytes(format!("{}\n", &full[..cut]).as_bytes());
        let response = conn.recv();
        assert_response_envelope(&response);
        prop_assert!(
            response.contains("\"ok\":false"),
            "prefix of length {cut} was accepted: {response}"
        );
        conn.assert_alive("alive-trunc");
    }

    /// A request split into two half-writes with a pause between them
    /// is reassembled into one well-formed response: framing is by
    /// newline, not by write boundary.
    #[test]
    fn interleaved_half_requests_reassemble(split_permille in 1u64..999) {
        let full = "{\"id\":\"h1\",\"verb\":\"status\",\"job\":\"job-none\"}\n";
        let split = 1 + (split_permille as usize * (full.len() - 2)) / 1000;
        let mut conn = FuzzConn::connect();
        conn.send_bytes(&full.as_bytes()[..split]);
        std::thread::sleep(Duration::from_millis(2));
        conn.send_bytes(&full.as_bytes()[split..]);
        let response = conn.recv();
        prop_assert!(
            response.contains("\"unknown_job\""),
            "reassembled request mishandled: {response}"
        );
    }

    /// Reusing a request id after a success is a `duplicate_id` error;
    /// the original job is unaffected and the connection keeps serving.
    #[test]
    fn duplicate_ids_are_rejected(id in "[a-z0-9]{1,12}") {
        let submit = format!(
            "{{\"id\":\"dup-{id}\",\"verb\":\"submit\",\"job\":{{\"entries\":[\"Sort\"],\"seed\":702}}}}\n"
        );
        let mut conn = FuzzConn::connect();
        conn.send_bytes(submit.as_bytes());
        let first = conn.recv();
        prop_assert!(first.contains("\"ok\":true"), "first submit: {first}");
        conn.send_bytes(submit.as_bytes());
        let second = conn.recv();
        prop_assert!(
            second.contains("\"duplicate_id\""),
            "second submit with the same id: {second}"
        );
        conn.assert_alive("alive-dup");
    }

    /// Subset-shaped garbage: a `subset` verb whose `k`/`linkage`/
    /// `window`/`seed` fields are arbitrary JSON scalars either
    /// validates (and computes nothing unsafe) or comes back as a
    /// structured `bad_request` — never a panic, never a dropped
    /// connection. Values are drawn adversarially around the valid
    /// ranges (0, fractions, negatives, huge, wrong types).
    #[test]
    fn subset_shaped_garbage_gets_structured_errors(
        k_pick in 0usize..12,
        linkage_pick in 0usize..9,
        seed_pick in 0usize..6,
    ) {
        const K_RAW: [&str; 12] = [
            "0", "1", "4", "11", "12", "99", "2.5", "-1", "1e99", "\"four\"", "null", "[]",
        ];
        const LINKAGE_RAW: [&str; 9] = [
            "\"single\"", "\"complete\"", "\"average\"", "\"ward\"", "\"COMPLETE\"", "\"\"",
            "7", "null", "[]",
        ];
        const SEED_RAW: [&str; 6] = ["0", "2013", "-7", "0.5", "\"x\"", "null"];
        let line = format!(
            "{{\"id\":\"ssfz\",\"verb\":\"subset\",\"k\":{},\"linkage\":{},\"window\":\"quick\",\"seed\":{}}}\n",
            K_RAW[k_pick], LINKAGE_RAW[linkage_pick], SEED_RAW[seed_pick],
        );
        // Pure parser layer first: total, never panics.
        match protocol::parse_request(line.trim_end()) {
            Ok(req) => prop_assert_eq!(req.verb(), "subset"),
            Err((id, err)) => {
                prop_assert_eq!(err.code, "bad_request");
                let _ = protocol::error_response(id.as_ref(), &err);
            }
        }
        // Then the live daemon: one line in, one envelope out. Valid
        // combinations answer ok (the matrix is cached after the first
        // hit); invalid ones answer bad_request.
        let mut conn = FuzzConn::connect();
        conn.send_bytes(line.as_bytes());
        let response = conn.recv();
        assert_response_envelope(&response);
        prop_assert!(
            response.contains("\"ok\":true") || response.contains("\"bad_request\""),
            "subset-shaped garbage: {response}"
        );
        conn.assert_alive("alive-subset");
    }

    /// Oversized lines are consumed and rejected with `line_too_long`;
    /// framing — and the connection — survive.
    #[test]
    fn oversized_lines_are_rejected_not_buffered(extra in 1usize..4096) {
        let mut line = vec![b'{'; MAX_LINE_BYTES + extra];
        line.push(b'\n');
        let mut conn = FuzzConn::connect();
        conn.send_bytes(&line);
        let response = conn.recv();
        prop_assert!(
            response.contains("\"line_too_long\""),
            "oversized line: {response}"
        );
        conn.assert_alive("alive-long");
    }
}

#[test]
fn a_hostile_session_mixing_every_abuse_still_serves_real_work() {
    let mut conn = FuzzConn::connect();
    // Garbage, truncation, duplicate ids, oversized lines, half-writes
    // — back to back on one connection.
    conn.send_bytes(b"\x00\xffgarbage\n");
    assert_response_envelope(&conn.recv());
    conn.send_bytes(b"{\"id\":\"mix\",\"verb\":\"sub\n");
    assert_response_envelope(&conn.recv());
    let mut oversized = vec![b'x'; MAX_LINE_BYTES + 7];
    oversized.push(b'\n');
    conn.send_bytes(&oversized);
    assert!(conn.recv().contains("\"line_too_long\""));
    // And then a real job goes straight through.
    conn.send_bytes(
        b"{\"id\":\"mix2\",\"verb\":\"submit\",\"job\":{\"entries\":[\"IBCF\"],\"seed\":703}}\n",
    );
    let accepted = conn.recv();
    assert!(
        accepted.contains("\"ok\":true"),
        "submit after abuse: {accepted}"
    );
}
