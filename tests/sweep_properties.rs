//! Property-based invariants of the sensitivity-sweep subsystem.
//!
//! The sweep engine's whole premise is that every point of a curve
//! executes the identical instruction stream (trace seeds depend only
//! on the master seed and the entry, never on the swept config). That
//! makes architectural monotonicity laws testable: on a fixed trace, a
//! bigger last-level cache must not miss more, and a predictor with
//! more history must not mispredict more. These must hold for **all
//! eleven** data-analysis workloads, not just the golden config — and
//! the interval-sampling conservation law (deltas telescope bit-for-bit
//! to the aggregate) must survive at every swept machine, too.

use dc_cpu::core::SimOptions;
use dc_cpu::CpuConfig;
use dcbench::registry::BenchmarkId;
use dcbench::sweep::{self, AxisSweep, SweepAxis};
use dcbench::Characterizer;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Fixed master seed for the whole suite: the properties are stated
/// per-trace, so the trace must be pinned while the machine varies.
const SEED: u64 = 0x5EED_5EED;

/// A test-sized measurement window. Big enough that every workload's
/// working set exercises the L3 and the predictor tables past warmup,
/// small enough that the full (workload × point) grid stays in tier-1
/// budget.
fn harness() -> Characterizer {
    Characterizer::new(
        CpuConfig::westmere_e5645(),
        SimOptions::exact(120_000, 40_000),
        SEED,
    )
}

fn da_ids() -> Vec<BenchmarkId> {
    BenchmarkId::data_analysis().to_vec()
}

/// The L3 axis swept once, shared by every proptest case (results are
/// also memoized process-wide by the counter cache).
fn l3_sweep() -> &'static AxisSweep {
    static SWEEP: OnceLock<AxisSweep> = OnceLock::new();
    SWEEP.get_or_init(|| {
        let axes = [SweepAxis::l3_bytes(vec![
            1536 << 10,
            3 << 20,
            6 << 20,
            12 << 20,
            24 << 20,
        ])];
        sweep::run(&harness(), &da_ids(), &axes)
            .expect("valid grid")
            .remove(0)
    })
}

/// The predictor-history axis swept once, shared by every case.
///
/// Grid note: between neighboring mid-range history lengths (4 vs 8
/// vs 12 bits) mispredictions sit on a noisy plateau — longer history
/// both sharpens and aliases the gshare tables, so a step of a few
/// bits can move a workload either way by a fraction of a percent.
/// The architectural law is about the *ends* of the axis: no history
/// (static not-taken) must be far worse than short history, which must
/// not beat the full 20-bit predictor with its largest table. Those
/// are the grid points the property is stated on.
fn predictor_sweep() -> &'static AxisSweep {
    static SWEEP: OnceLock<AxisSweep> = OnceLock::new();
    SWEEP.get_or_init(|| {
        let axes = [SweepAxis::predictor_bits(vec![0, 4, 20])];
        sweep::run(&harness(), &da_ids(), &axes)
            .expect("valid grid")
            .remove(0)
    })
}

proptest! {
    /// On a fixed trace, growing the L3 never increases L3 misses —
    /// for every data-analysis workload at every step of the axis.
    #[test]
    fn l3_misses_monotone_in_l3_capacity(w in 0usize..11) {
        let sweep = l3_sweep();
        let curve = &sweep.curves[w];
        for (i, pair) in curve.counts.windows(2).enumerate() {
            prop_assert!(
                pair[1].l3_misses <= pair[0].l3_misses,
                "{}: L3 misses rose {} -> {} between {} and {}",
                curve.id.name(),
                pair[0].l3_misses,
                pair[1].l3_misses,
                sweep.labels[i],
                sweep.labels[i + 1],
            );
        }
        // The instruction stream really was identical at every point.
        for c in &curve.counts[1..] {
            prop_assert_eq!(c.instructions, curve.counts[0].instructions);
        }
    }

    /// On a fixed trace, more predictor history never mispredicts more
    /// — for every data-analysis workload at every step of the axis.
    #[test]
    fn misprediction_monotone_in_predictor_bits(w in 0usize..11) {
        let sweep = predictor_sweep();
        let curve = &sweep.curves[w];
        for (i, pair) in curve.counts.windows(2).enumerate() {
            prop_assert!(
                pair[1].branch_mispredicts <= pair[0].branch_mispredicts,
                "{}: mispredictions rose {} -> {} between {} and {} history bits",
                curve.id.name(),
                pair[0].branch_mispredicts,
                pair[1].branch_mispredicts,
                sweep.labels[i],
                sweep.labels[i + 1],
            );
        }
    }

    /// Interval-sample deltas telescope bit-for-bit to the aggregate at
    /// *every* swept machine, not just the golden config: the sampling
    /// subsystem may not assume anything about the geometry under it.
    #[test]
    fn sampling_conserves_at_swept_points(
        w in 0usize..11,
        point in 0usize..4,
        every_kcycles in 2u64..40,
    ) {
        let axis = SweepAxis::predictor_bits(vec![0, 4, 8, 12]);
        let cfg = axis
            .apply(harness().config(), axis.points()[point])
            .expect("valid grid value");
        let bench = harness().with_config(cfg);
        let id = da_ids()[w];
        let run = bench.raw_sampled(id, every_kcycles * 1000);
        prop_assert_eq!(run.summed(), run.aggregate, "{}", id.name());
        prop_assert_eq!(run.aggregate, bench.raw_counts(id), "{}", id.name());
    }
}
